//! `loadgen` — closed-loop load generator for `served`.
//!
//! Replays the paper's workload table (every layer of the seven CNNs, each
//! under four estimators: TPU channel-first, TPU explicit, GPU
//! cuDNN-implicit, GPU channel-first+reuse) against a server, at a
//! configurable connection count and pipelining window, for several passes.
//! Pass 1 is the cold pass (all cache misses); later passes measure the
//! warm cache. `--batch N` switches the framing from one request line per
//! estimate to `batch` requests of N items each. Prints a per-pass
//! throughput/latency/hit-rate table, then always runs a **compare
//! phase** — cold single-request lockstep vs. one cold whole-table batch,
//! each on a fresh in-process server — and writes the machine-readable
//! report to `BENCH_serve.json`.
//!
//! By default it spawns an in-process server so `cargo run --bin loadgen`
//! is self-contained; `--addr` points it at an external `served` instead.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use iconv_api::table::workload_works;
use iconv_serve::cache::{Body, LruCache, StripedCache};
use iconv_serve::client::{Client, DEFAULT_CONNECT_TIMEOUT};
use iconv_serve::protocol::{
    encode_estimate, encode_sweep, EstimateRequest, Response, StatsSnapshot, SweepSpec,
    SweepTarget, Work,
};
use iconv_serve::server::{spawn, ServerConfig};

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--concurrency N] [--window N] \
                     [--passes N] [--workers N] [--batch N] [--models all|small] \
                     [--connect-timeout SECS] [--out PATH] [--shutdown]";

struct Args {
    addr: Option<String>,
    concurrency: usize,
    window: usize,
    passes: usize,
    workers: usize,
    /// Items per `batch` request; 0 = one `conv`/`gemm` line per estimate.
    batch: usize,
    small: bool,
    /// Budget for the initial connect race against a booting server.
    connect_timeout: Duration,
    out: String,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            concurrency: 8,
            window: 32,
            passes: 2,
            workers: iconv_par::default_jobs(),
            batch: 0,
            small: false,
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            out: "BENCH_serve.json".to_owned(),
            shutdown: false,
        }
    }
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value; {USAGE}"))
        };
        let positive = |name: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{name} needs a positive integer (got {v:?}); {USAGE}"))
        };
        match a.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")?),
            "--concurrency" => {
                parsed.concurrency = positive("--concurrency", value("--concurrency")?)?
            }
            "--window" => parsed.window = positive("--window", value("--window")?)?,
            "--passes" => parsed.passes = positive("--passes", value("--passes")?)?,
            "--workers" => parsed.workers = positive("--workers", value("--workers")?)?,
            "--batch" => parsed.batch = positive("--batch", value("--batch")?)?,
            "--connect-timeout" => {
                parsed.connect_timeout = Duration::from_secs(positive(
                    "--connect-timeout",
                    value("--connect-timeout")?,
                )? as u64);
            }
            "--out" => parsed.out = value("--out")?,
            "--shutdown" => parsed.shutdown = true,
            "--models" => {
                parsed.small = match value("--models")?.as_str() {
                    "all" => false,
                    "small" => true,
                    other => {
                        return Err(format!(
                            "--models must be all|small (got {other:?}); {USAGE}"
                        ))
                    }
                }
            }
            other => return Err(format!("unknown argument {other:?}; {USAGE}")),
        }
    }
    Ok(parsed)
}

/// One closed-loop connection, single-request framing: keep up to `window`
/// requests outstanding, read one, top the window back up. Returns
/// (responses, typed errors).
fn run_chunk(addr: &str, lines: &[String], window: usize) -> (u64, u64) {
    let Ok(mut client) = Client::connect(addr) else {
        eprintln!("loadgen: connect to {addr} failed");
        return (0, lines.len() as u64);
    };
    let (mut sent, mut recvd, mut errors) = (0usize, 0usize, 0u64);
    while recvd < lines.len() {
        while sent < lines.len() && sent - recvd < window {
            if client.send_line(&lines[sent]).is_err() {
                return (recvd as u64, errors + (lines.len() - recvd) as u64);
            }
            sent += 1;
        }
        if client.flush().is_err() {
            return (recvd as u64, errors + (lines.len() - recvd) as u64);
        }
        match client.recv_response() {
            Ok(Response::Error { kind, detail, .. }) => {
                errors += 1;
                recvd += 1;
                eprintln!("loadgen: server error {kind}: {detail}");
            }
            Ok(_) => recvd += 1,
            Err(e) => {
                eprintln!("loadgen: receive failed: {e}");
                return (recvd as u64, errors + (lines.len() - recvd) as u64);
            }
        }
    }
    (recvd as u64, errors)
}

/// One closed-loop connection, batched framing: the chunk's work table is
/// partitioned into `batch`-item requests, each answered by its item span
/// plus a summary. Returns (item responses, item errors).
fn run_chunk_batched(addr: &str, works: &[Work], batch: usize) -> (u64, u64) {
    let Ok(mut client) = Client::connect(addr) else {
        eprintln!("loadgen: connect to {addr} failed");
        return (0, works.len() as u64);
    };
    let (mut recvd, mut errors) = (0u64, 0u64);
    for group in works.chunks(batch) {
        match client.batch(group, None) {
            Ok(replies) => {
                for reply in replies {
                    recvd += 1;
                    if let Err((kind, detail)) = reply {
                        errors += 1;
                        eprintln!("loadgen: server error {kind}: {detail}");
                    }
                }
            }
            Err(e) => {
                eprintln!("loadgen: batch failed: {e}");
                return (recvd, errors + (works.len() as u64 - recvd));
            }
        }
    }
    (recvd, errors)
}

struct PassReport {
    requests: u64,
    errors: u64,
    hits: u64,
    misses: u64,
    wall_seconds: f64,
    throughput_rps: f64,
    hit_rate: f64,
    mean_latency_us: f64,
}

fn run_pass(addr: &str, works: &[Work], args: &Args, control: &mut Client) -> PassReport {
    let lines: Vec<String> = if args.batch == 0 {
        works
            .iter()
            .map(|&work| {
                encode_estimate(&EstimateRequest {
                    id: None,
                    work,
                    deadline_ms: None,
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    let before = control.stats().expect("stats RPC");
    let t0 = Instant::now();
    let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let work_chunks = chunk_evenly(works, args.concurrency);
        // Batched framing encodes per chunk, so there are no request lines
        // to split; hand every connection an empty (unused) line slice.
        let line_chunks = if args.batch == 0 {
            chunk_evenly(&lines, args.concurrency)
        } else {
            vec![&lines[..]; work_chunks.len()]
        };
        let handles: Vec<_> = work_chunks
            .into_iter()
            .zip(line_chunks)
            .map(|(work_chunk, line_chunk)| {
                scope.spawn(move || {
                    if args.batch == 0 {
                        run_chunk(addr, line_chunk, args.window)
                    } else {
                        run_chunk_batched(addr, work_chunk, args.batch)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk thread"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let after = control.stats().expect("stats RPC");
    let responses: u64 = results.iter().map(|(r, _)| r).sum();
    let errors: u64 = results.iter().map(|(_, e)| e).sum();
    let served = after.requests - before.requests;
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    PassReport {
        requests: responses,
        errors,
        hits,
        misses,
        wall_seconds: wall,
        throughput_rps: responses as f64 / wall.max(1e-9),
        hit_rate: if served == 0 {
            0.0
        } else {
            hits as f64 / served as f64
        },
        mean_latency_us: if served == 0 {
            0.0
        } else {
            (after.latency_us_total - before.latency_us_total) as f64 / served as f64
        },
    }
}

fn chunk_evenly<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.min(items.len()).max(1);
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

struct Compare {
    requests: usize,
    cold_single_rps: f64,
    cold_batched_rps: f64,
    batched_over_single_cold: f64,
}

/// The compare-phase workload: a sweep of small GPU conv shapes. Small
/// spatial extents keep the analytic estimator in the microsecond range,
/// so cold throughput on these measures protocol and dispatch overhead —
/// exactly what batching amortizes. (The paper workload's layers are
/// evaluation-bound at the millisecond scale; on them the framing
/// difference drowns in compute and the comparison says nothing.)
fn compare_sweep() -> (SweepSpec, Vec<Work>) {
    let base = iconv_tensor::ConvShape::square(1, 3, 8, 16, 3, 1, 1).expect("compare base shape");
    let mut spec = SweepSpec::new(
        base,
        SweepTarget::Gpu {
            algo: iconv_gpusim::GpuAlgo::CudnnImplicit,
        },
    );
    spec.cis = (1..=64).collect();
    spec.strides = vec![1, 2];
    spec.dilations = vec![1, 2];
    let works = spec.expand().expect("compare sweep expands");
    (spec, works)
}

/// Head-to-head framing comparison on the dispatch-bound sweep from
/// [`compare_sweep`]. Both sides run cold on their own fresh in-process
/// server: one `conv` request per item in strict lockstep vs. the whole
/// sweep as a single compact `batch` request.
fn run_compare(workers: usize) -> Compare {
    let (spec, works) = compare_sweep();
    let fresh_server = || {
        spawn(ServerConfig {
            workers,
            ..ServerConfig::default()
        })
        .expect("spawn compare server")
    };

    let cold_single_rps = {
        let handle = fresh_server();
        let addr = handle.local_addr().to_string();
        let mut client =
            Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("compare connect");
        let t0 = Instant::now();
        for &work in &works {
            let line = encode_estimate(&EstimateRequest {
                id: None,
                work,
                deadline_ms: None,
            });
            client.call(&line).expect("compare single estimate");
        }
        let wall = t0.elapsed().as_secs_f64();
        handle.shutdown();
        works.len() as f64 / wall.max(1e-9)
    };

    let cold_batched_rps = {
        let handle = fresh_server();
        let addr = handle.local_addr().to_string();
        let mut client =
            Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("compare connect");
        let t0 = Instant::now();
        client
            .send_line(&encode_sweep(None, &spec, None))
            .expect("compare sweep send");
        client.flush().expect("compare sweep flush");
        let mut lines = 0usize;
        for _ in 0..=works.len() {
            let line = client.recv_line().expect("compare sweep recv");
            assert!(
                !line.contains("\"error\""),
                "compare sweep item failed: {line}"
            );
            lines += 1;
        }
        let wall = t0.elapsed().as_secs_f64();
        handle.shutdown();
        assert_eq!(lines, works.len() + 1, "item span plus summary");
        works.len() as f64 / wall.max(1e-9)
    };

    Compare {
        requests: works.len(),
        cold_single_rps,
        cold_batched_rps,
        batched_over_single_cold: cold_batched_rps / cold_single_rps.max(1e-9),
    }
}

struct CacheCompare {
    threads: usize,
    keys: usize,
    striped_shards: usize,
    global_ops_per_sec: f64,
    striped_ops_per_sec: f64,
    striped_over_global: f64,
}

/// Head-to-head warm-hit hammer: the old cache design (one global
/// `Mutex<LruCache<String>>` whose every hit clones the full response
/// body under the lock) vs. the striped cache (independent shard locks,
/// `Arc` bodies — a hit is a refcount bump). `threads` closed loops read
/// a hot key set as fast as they can; the ratio is the part of the
/// cache-lock bottleneck that striping + shared bodies removed.
fn run_cache_compare(threads: usize) -> CacheCompare {
    const KEYS: usize = 64;
    // Generous on purpose: the hot set must fit even its most skewed
    // shard, so both sides run pure warm hits (capacity is split across
    // shards, and 64 keys do not land 4-per-shard exactly).
    const CAPACITY: usize = 1024;
    const OPS_PER_THREAD: usize = 100_000;
    // A representative body: the rendering of a real TPU estimate
    // response — what the old cache memcpy'd (plus an allocation) on
    // every single hit.
    let body: String = format!(
        "\"ok\":true,\"est\":{{\"cycles\":123456789,\"macs\":987654321,\
         \"tiles\":4096,\"sram_bytes\":262144,\"dram_bytes\":1048576,\
         \"utilization\":\"0.8734\",\"schedule\":\"double-buffered\",\
         \"pipeline\":{:?}}}",
        (0..8).map(|i| i * 17).collect::<Vec<usize>>()
    );
    let keys: Vec<String> = (0..KEYS)
        .map(|k| format!("tpuv3;conv;n1c64h56w56k64r3s3;mode=cf;key-{k}"))
        .collect();

    let hammer = |get: &(dyn Fn(&str) -> usize + Sync)| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let keys = &keys;
                    scope.spawn(move || {
                        let mut got = 0usize;
                        for i in 0..OPS_PER_THREAD {
                            got += get(&keys[(i + t) % KEYS]);
                        }
                        assert_eq!(got, OPS_PER_THREAD, "every warm get must hit");
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("hammer thread");
            }
        });
        (threads * OPS_PER_THREAD) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };

    let global_ops_per_sec = {
        let cache = Mutex::new(LruCache::<String>::new(CAPACITY));
        for key in &keys {
            cache.lock().unwrap().insert(key.clone(), body.clone());
        }
        hammer(&|key| {
            // The pre-striping hit path: full body clone while holding
            // the one lock every other connection needs.
            let cloned: Option<String> = cache.lock().unwrap().get(key);
            usize::from(cloned.is_some())
        })
    };

    let striped_shards = StripedCache::DEFAULT_SHARDS;
    let striped_ops_per_sec = {
        let cache = StripedCache::new(CAPACITY, striped_shards);
        let shared: Body = Arc::from(body.as_str());
        for key in &keys {
            cache.insert(key.clone(), Arc::clone(&shared));
        }
        hammer(&|key| usize::from(cache.get(key).is_some()))
    };

    CacheCompare {
        threads,
        keys: KEYS,
        striped_shards,
        global_ops_per_sec,
        striped_ops_per_sec,
        striped_over_global: striped_ops_per_sec / global_ops_per_sec.max(1e-9),
    }
}

fn write_report(
    path: &str,
    args: &Args,
    n_requests: usize,
    passes: &[PassReport],
    compare: &Compare,
    cache_compare: &CacheCompare,
    final_stats: &StatsSnapshot,
) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"bench\": \"serve\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"concurrency\": {}, \"window\": {}, \"passes\": {}, \
         \"requests_per_pass\": {}, \"workers\": {}, \"batch\": {}}},\n",
        args.concurrency, args.window, args.passes, n_requests, final_stats.workers, args.batch
    ));
    out.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pass\": {}, \"requests\": {}, \"errors\": {}, \"hits\": {}, \
             \"misses\": {}, \"wall_seconds\": {:.6}, \"throughput_rps\": {:.1}, \
             \"hit_rate\": {:.4}, \"mean_latency_us\": {:.1}}}{}\n",
            i,
            p.requests,
            p.errors,
            p.hits,
            p.misses,
            p.wall_seconds,
            p.throughput_rps,
            p.hit_rate,
            p.mean_latency_us,
            if i + 1 < passes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let second_hit = passes.get(1).map_or(0.0, |p| p.hit_rate);
    let warm_over_cold = match (passes.first(), passes.last()) {
        (Some(cold), Some(warm)) if passes.len() > 1 && cold.throughput_rps > 0.0 => {
            warm.throughput_rps / cold.throughput_rps
        }
        _ => 1.0,
    };
    out.push_str(&format!("  \"second_pass_hit_rate\": {second_hit:.4},\n"));
    out.push_str(&format!(
        "  \"warm_over_cold_throughput\": {warm_over_cold:.2},\n"
    ));
    out.push_str(&format!(
        "  \"compare\": {{\"requests\": {}, \"cold_single_rps\": {:.1}, \
         \"cold_batched_rps\": {:.1}, \"batched_over_single_cold\": {:.2}}},\n",
        compare.requests,
        compare.cold_single_rps,
        compare.cold_batched_rps,
        compare.batched_over_single_cold
    ));
    out.push_str(&format!(
        "  \"cache_compare\": {{\"threads\": {}, \"keys\": {}, \"striped_shards\": {}, \
         \"global_ops_per_sec\": {:.1}, \"striped_ops_per_sec\": {:.1}, \
         \"striped_over_global\": {:.2}}},\n",
        cache_compare.threads,
        cache_compare.keys,
        cache_compare.striped_shards,
        cache_compare.global_ops_per_sec,
        cache_compare.striped_ops_per_sec,
        cache_compare.striped_over_global
    ));
    out.push_str(&format!(
        "  \"final_stats\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"cache_entries\": {}, \"busy_rejections\": {}, \
         \"latency_us_max\": {}, \"batches\": {}, \"batch_items\": {}, \
         \"batch_hits\": {}, \"batch_misses\": {}, \"batch_errors\": {}}}\n}}\n",
        final_stats.requests,
        final_stats.hits,
        final_stats.misses,
        final_stats.evictions,
        final_stats.cache_entries,
        final_stats.busy_rejections,
        final_stats.latency_us_max,
        final_stats.batches,
        final_stats.batch_items,
        final_stats.batch_hits,
        final_stats.batch_misses,
        final_stats.batch_errors
    ));
    std::fs::write(path, out)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("loadgen: {err}");
            std::process::exit(2);
        }
    };
    // Either connect out, or boot an in-process server.
    let (addr, local) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = spawn(ServerConfig {
                workers: args.workers,
                ..ServerConfig::default()
            })
            .expect("spawn in-process server");
            (handle.local_addr().to_string(), Some(handle))
        }
    };
    let mut control = match Client::connect_retry(&addr, args.connect_timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    };
    let works = workload_works(args.small);
    eprintln!(
        "loadgen: {} requests/pass x {} passes, {} connection(s), {}",
        works.len(),
        args.passes,
        args.concurrency,
        if args.batch == 0 {
            format!("window {}", args.window)
        } else {
            format!("batches of {}", args.batch)
        }
    );

    let mut passes = Vec::with_capacity(args.passes);
    for i in 0..args.passes {
        let p = run_pass(&addr, &works, &args, &mut control);
        eprintln!(
            "  pass {i}: {:>6} req in {:>7.3}s  {:>9.1} req/s  hit-rate {:>5.1}%  \
             mean latency {:>8.1}us{}",
            p.requests,
            p.wall_seconds,
            p.throughput_rps,
            100.0 * p.hit_rate,
            p.mean_latency_us,
            if p.errors > 0 {
                format!("  ({} errors)", p.errors)
            } else {
                String::new()
            }
        );
        passes.push(p);
    }

    let final_stats = control.stats().expect("stats RPC");
    if passes.len() > 1 {
        let cold = passes[0].throughput_rps;
        let warm = passes.last().unwrap().throughput_rps;
        eprintln!(
            "loadgen: warm/cold throughput {:.1}x, second-pass hit rate {:.1}%",
            warm / cold.max(1e-9),
            100.0 * passes[1].hit_rate
        );
    }

    // Framing comparison on fresh in-process servers (independent of
    // --addr: the point is the framing, not the target server's state).
    let compare = run_compare(args.workers);
    eprintln!(
        "loadgen: compare ({} GPU requests, cold): single {:.0} req/s, batched {:.0} req/s \
         ({:.1}x)",
        compare.requests,
        compare.cold_single_rps,
        compare.cold_batched_rps,
        compare.batched_over_single_cold
    );

    // Striped-vs-global warm-hit comparison (in-process, independent of
    // the target server: the point is the cache's lock architecture).
    let cache_compare = run_cache_compare(args.concurrency);
    eprintln!(
        "loadgen: cache compare ({} threads, {} hot keys): global-lock {:.2}M ops/s, \
         striped {:.2}M ops/s ({:.1}x)",
        cache_compare.threads,
        cache_compare.keys,
        cache_compare.global_ops_per_sec / 1e6,
        cache_compare.striped_ops_per_sec / 1e6,
        cache_compare.striped_over_global
    );

    match write_report(
        &args.out,
        &args,
        works.len(),
        &passes,
        &compare,
        &cache_compare,
        &final_stats,
    ) {
        Ok(()) => eprintln!("loadgen: wrote {}", args.out),
        Err(e) => {
            eprintln!("loadgen: could not write {}: {e}", args.out);
            std::process::exit(1);
        }
    }
    if args.shutdown {
        let _ = control.shutdown_server();
    }
    if let Some(handle) = local {
        handle.shutdown();
    }
    let errors: u64 = passes.iter().map(|p| p.errors).sum();
    if errors > 0 {
        eprintln!("loadgen: {errors} request(s) failed");
        std::process::exit(1);
    }
}
