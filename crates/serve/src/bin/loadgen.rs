//! `loadgen` — closed- and open-loop load generator for `served`.
//!
//! **Closed loop** (default): replays the paper's workload table (every
//! layer of the seven CNNs, each under four estimators: TPU
//! channel-first, TPU explicit, GPU cuDNN-implicit, GPU
//! channel-first+reuse) against a server, at a configurable connection
//! count and pipelining window, for several passes. Pass 1 is the cold
//! pass (all cache misses); later passes measure the warm cache. `--batch
//! N` switches the framing from one request line per estimate to `batch`
//! requests of N items each. Prints a per-pass
//! throughput/latency/hit-rate table, then always runs a **compare
//! phase** — cold single-request lockstep vs. one cold whole-table batch,
//! each on a fresh in-process server — and writes the machine-readable
//! report to `BENCH_serve.json`.
//!
//! **Open loop** (`--open-loop`): sends on a virtual-clock arrival
//! schedule at `--rate` requests/second — never waiting for responses —
//! with latency stamped from each request's *intended* send instant, so
//! the numbers are immune to coordinated omission. Keys are
//! Zipfian-skewed over the canonical workload table and the framing mixes
//! single, batch, sweep, and `tune` requests, all deterministically from
//! `--seed`. With `--knee` it then bisects offered rates for the maximum
//! sustained throughput under the `--slo` p99, and `--soak` switches the
//! defaults to the sustained profile (a million scheduled entries at a
//! rate inside every topology's knee). Without `--addr` it measures two
//! in-process topologies — one `served`, and a 3-backend fleet behind
//! `routed` — and writes both to `BENCH_capacity.json`.
//!
//! By default it spawns in-process servers so `cargo run --bin loadgen`
//! is self-contained; `--addr` points it at an external target instead.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use iconv_api::table::pass_leg_works;
use iconv_serve::cache::{Body, LruCache, StripedCache};
use iconv_serve::capacity::{
    build_schedule, find_knee, run_open_loop, Knee, OpenLoopRun, OpenLoopSpec,
};
use iconv_serve::cli::{parse_loadgen_args, ClosedArgs, LoadgenArgs, Mode, OpenArgs};
use iconv_serve::client::{Client, DEFAULT_CONNECT_TIMEOUT};
use iconv_serve::protocol::{
    encode_estimate, encode_sweep, EstimateRequest, Response, StatsSnapshot, SweepSpec,
    SweepTarget, Work,
};
use iconv_serve::router::{spawn_router, RouterConfig};
use iconv_serve::server::{spawn, ServerConfig, ServerHandle};

/// One closed-loop connection, single-request framing: keep up to `window`
/// requests outstanding, read one, top the window back up. Returns
/// (responses, typed errors).
fn run_chunk(addr: &str, lines: &[String], window: usize) -> (u64, u64) {
    let Ok(mut client) = Client::connect(addr) else {
        eprintln!("loadgen: connect to {addr} failed");
        return (0, lines.len() as u64);
    };
    let (mut sent, mut recvd, mut errors) = (0usize, 0usize, 0u64);
    while recvd < lines.len() {
        while sent < lines.len() && sent - recvd < window {
            if client.send_line(&lines[sent]).is_err() {
                return (recvd as u64, errors + (lines.len() - recvd) as u64);
            }
            sent += 1;
        }
        if client.flush().is_err() {
            return (recvd as u64, errors + (lines.len() - recvd) as u64);
        }
        match client.recv_response() {
            Ok(Response::Error { kind, detail, .. }) => {
                errors += 1;
                recvd += 1;
                eprintln!("loadgen: server error {kind}: {detail}");
            }
            Ok(_) => recvd += 1,
            Err(e) => {
                eprintln!("loadgen: receive failed: {e}");
                return (recvd as u64, errors + (lines.len() - recvd) as u64);
            }
        }
    }
    (recvd as u64, errors)
}

/// One closed-loop connection, batched framing: the chunk's work table is
/// partitioned into `batch`-item requests, each answered by its item span
/// plus a summary. Returns (item responses, item errors).
fn run_chunk_batched(addr: &str, works: &[Work], batch: usize) -> (u64, u64) {
    let Ok(mut client) = Client::connect(addr) else {
        eprintln!("loadgen: connect to {addr} failed");
        return (0, works.len() as u64);
    };
    let (mut recvd, mut errors) = (0u64, 0u64);
    for group in works.chunks(batch) {
        match client.batch(group, None) {
            Ok(replies) => {
                for reply in replies {
                    recvd += 1;
                    if let Err((kind, detail)) = reply {
                        errors += 1;
                        eprintln!("loadgen: server error {kind}: {detail}");
                    }
                }
            }
            Err(e) => {
                eprintln!("loadgen: batch failed: {e}");
                return (recvd, errors + (works.len() as u64 - recvd));
            }
        }
    }
    (recvd, errors)
}

struct PassReport {
    requests: u64,
    errors: u64,
    hits: u64,
    misses: u64,
    wall_seconds: f64,
    throughput_rps: f64,
    hit_rate: f64,
    mean_latency_us: f64,
}

fn run_pass(
    addr: &str,
    works: &[Work],
    concurrency: usize,
    closed: &ClosedArgs,
    control: &mut Client,
) -> PassReport {
    let lines: Vec<String> = if closed.batch == 0 {
        works
            .iter()
            .map(|&work| {
                encode_estimate(&EstimateRequest {
                    id: None,
                    work,
                    deadline_ms: None,
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    let before = control.stats().expect("stats RPC");
    let t0 = Instant::now();
    let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let work_chunks = chunk_evenly(works, concurrency);
        // Batched framing encodes per chunk, so there are no request lines
        // to split; hand every connection an empty (unused) line slice.
        let line_chunks = if closed.batch == 0 {
            chunk_evenly(&lines, concurrency)
        } else {
            vec![&lines[..]; work_chunks.len()]
        };
        let handles: Vec<_> = work_chunks
            .into_iter()
            .zip(line_chunks)
            .map(|(work_chunk, line_chunk)| {
                scope.spawn(move || {
                    if closed.batch == 0 {
                        run_chunk(addr, line_chunk, closed.window)
                    } else {
                        run_chunk_batched(addr, work_chunk, closed.batch)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk thread"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let after = control.stats().expect("stats RPC");
    let responses: u64 = results.iter().map(|(r, _)| r).sum();
    let errors: u64 = results.iter().map(|(_, e)| e).sum();
    let served = after.requests - before.requests;
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    PassReport {
        requests: responses,
        errors,
        hits,
        misses,
        wall_seconds: wall,
        throughput_rps: responses as f64 / wall.max(1e-9),
        hit_rate: if served == 0 {
            0.0
        } else {
            hits as f64 / served as f64
        },
        mean_latency_us: if served == 0 {
            0.0
        } else {
            (after.latency_us_total - before.latency_us_total) as f64 / served as f64
        },
    }
}

fn chunk_evenly<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.min(items.len()).max(1);
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

struct Compare {
    requests: usize,
    cold_single_rps: f64,
    cold_batched_rps: f64,
    batched_over_single_cold: f64,
}

/// The compare-phase workload: a sweep of small GPU conv shapes. Small
/// spatial extents keep the analytic estimator in the microsecond range,
/// so cold throughput on these measures protocol and dispatch overhead —
/// exactly what batching amortizes. (The paper workload's layers are
/// evaluation-bound at the millisecond scale; on them the framing
/// difference drowns in compute and the comparison says nothing.)
fn compare_sweep() -> (SweepSpec, Vec<Work>) {
    let base = iconv_tensor::ConvShape::square(1, 3, 8, 16, 3, 1, 1).expect("compare base shape");
    let mut spec = SweepSpec::new(
        base,
        SweepTarget::Gpu {
            algo: iconv_gpusim::GpuAlgo::CudnnImplicit,
        },
    );
    spec.cis = (1..=64).collect();
    spec.strides = vec![1, 2];
    spec.dilations = vec![1, 2];
    let works = spec.expand().expect("compare sweep expands");
    (spec, works)
}

/// Head-to-head framing comparison on the dispatch-bound sweep from
/// [`compare_sweep`]. Both sides run cold on their own fresh in-process
/// server: one `conv` request per item in strict lockstep vs. the whole
/// sweep as a single compact `batch` request.
fn run_compare(workers: usize) -> Compare {
    let (spec, works) = compare_sweep();
    let fresh_server = || {
        spawn(ServerConfig {
            workers,
            ..ServerConfig::default()
        })
        .expect("spawn compare server")
    };

    let cold_single_rps = {
        let handle = fresh_server();
        let addr = handle.local_addr().to_string();
        let mut client =
            Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("compare connect");
        let t0 = Instant::now();
        for &work in &works {
            let line = encode_estimate(&EstimateRequest {
                id: None,
                work,
                deadline_ms: None,
            });
            client.call(&line).expect("compare single estimate");
        }
        let wall = t0.elapsed().as_secs_f64();
        handle.shutdown();
        works.len() as f64 / wall.max(1e-9)
    };

    let cold_batched_rps = {
        let handle = fresh_server();
        let addr = handle.local_addr().to_string();
        let mut client =
            Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("compare connect");
        let t0 = Instant::now();
        client
            .send_line(&encode_sweep(None, &spec, None))
            .expect("compare sweep send");
        client.flush().expect("compare sweep flush");
        let mut lines = 0usize;
        for _ in 0..=works.len() {
            let line = client.recv_line().expect("compare sweep recv");
            assert!(
                !line.contains("\"error\""),
                "compare sweep item failed: {line}"
            );
            lines += 1;
        }
        let wall = t0.elapsed().as_secs_f64();
        handle.shutdown();
        assert_eq!(lines, works.len() + 1, "item span plus summary");
        works.len() as f64 / wall.max(1e-9)
    };

    Compare {
        requests: works.len(),
        cold_single_rps,
        cold_batched_rps,
        batched_over_single_cold: cold_batched_rps / cold_single_rps.max(1e-9),
    }
}

struct CacheCompare {
    threads: usize,
    keys: usize,
    striped_shards: usize,
    global_ops_per_sec: f64,
    striped_ops_per_sec: f64,
    striped_over_global: f64,
}

/// Head-to-head warm-hit hammer: the old cache design (one global
/// `Mutex<LruCache<String>>` whose every hit clones the full response
/// body under the lock) vs. the striped cache (independent shard locks,
/// `Arc` bodies — a hit is a refcount bump). `threads` closed loops read
/// a hot key set as fast as they can; the ratio is the part of the
/// cache-lock bottleneck that striping + shared bodies removed.
fn run_cache_compare(threads: usize) -> CacheCompare {
    const KEYS: usize = 64;
    // Generous on purpose: the hot set must fit even its most skewed
    // shard, so both sides run pure warm hits (capacity is split across
    // shards, and 64 keys do not land 4-per-shard exactly).
    const CAPACITY: usize = 1024;
    const OPS_PER_THREAD: usize = 100_000;
    // A representative body: the rendering of a real TPU estimate
    // response — what the old cache memcpy'd (plus an allocation) on
    // every single hit.
    let body: String = format!(
        "\"ok\":true,\"est\":{{\"cycles\":123456789,\"macs\":987654321,\
         \"tiles\":4096,\"sram_bytes\":262144,\"dram_bytes\":1048576,\
         \"utilization\":\"0.8734\",\"schedule\":\"double-buffered\",\
         \"pipeline\":{:?}}}",
        (0..8).map(|i| i * 17).collect::<Vec<usize>>()
    );
    let keys: Vec<String> = (0..KEYS)
        .map(|k| format!("tpuv3;conv;n1c64h56w56k64r3s3;mode=cf;key-{k}"))
        .collect();

    let hammer = |get: &(dyn Fn(&str) -> usize + Sync)| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let keys = &keys;
                    scope.spawn(move || {
                        let mut got = 0usize;
                        for i in 0..OPS_PER_THREAD {
                            got += get(&keys[(i + t) % KEYS]);
                        }
                        assert_eq!(got, OPS_PER_THREAD, "every warm get must hit");
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("hammer thread");
            }
        });
        (threads * OPS_PER_THREAD) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };

    let global_ops_per_sec = {
        let cache = Mutex::new(LruCache::<String>::new(CAPACITY));
        for key in &keys {
            cache.lock().unwrap().insert(key.clone(), body.clone());
        }
        hammer(&|key| {
            // The pre-striping hit path: full body clone while holding
            // the one lock every other connection needs.
            let cloned: Option<String> = cache.lock().unwrap().get(key);
            usize::from(cloned.is_some())
        })
    };

    let striped_shards = StripedCache::DEFAULT_SHARDS;
    let striped_ops_per_sec = {
        let cache = StripedCache::new(CAPACITY, striped_shards);
        let shared: Body = Arc::from(body.as_str());
        for key in &keys {
            cache.insert(key.clone(), Arc::clone(&shared));
        }
        hammer(&|key| usize::from(cache.get(key).is_some()))
    };

    CacheCompare {
        threads,
        keys: KEYS,
        striped_shards,
        global_ops_per_sec,
        striped_ops_per_sec,
        striped_over_global: striped_ops_per_sec / global_ops_per_sec.max(1e-9),
    }
}

/// Run-level facts the closed-loop report needs besides the pass table.
struct ClosedSummary<'a> {
    concurrency: usize,
    n_requests: usize,
    final_stats: &'a StatsSnapshot,
}

fn write_report(
    path: &str,
    closed: &ClosedArgs,
    summary: &ClosedSummary<'_>,
    passes: &[PassReport],
    compare: &Compare,
    cache_compare: &CacheCompare,
) -> std::io::Result<()> {
    let final_stats = summary.final_stats;
    let mut out = String::from("{\n  \"bench\": \"serve\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"concurrency\": {}, \"window\": {}, \"passes\": {}, \
         \"requests_per_pass\": {}, \"workers\": {}, \"batch\": {}}},\n",
        summary.concurrency,
        closed.window,
        closed.passes,
        summary.n_requests,
        final_stats.workers,
        closed.batch
    ));
    out.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pass\": {}, \"requests\": {}, \"errors\": {}, \"hits\": {}, \
             \"misses\": {}, \"wall_seconds\": {:.6}, \"throughput_rps\": {:.1}, \
             \"hit_rate\": {:.4}, \"mean_latency_us\": {:.1}}}{}\n",
            i,
            p.requests,
            p.errors,
            p.hits,
            p.misses,
            p.wall_seconds,
            p.throughput_rps,
            p.hit_rate,
            p.mean_latency_us,
            if i + 1 < passes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let second_hit = passes.get(1).map_or(0.0, |p| p.hit_rate);
    let warm_over_cold = match (passes.first(), passes.last()) {
        (Some(cold), Some(warm)) if passes.len() > 1 && cold.throughput_rps > 0.0 => {
            warm.throughput_rps / cold.throughput_rps
        }
        _ => 1.0,
    };
    out.push_str(&format!("  \"second_pass_hit_rate\": {second_hit:.4},\n"));
    out.push_str(&format!(
        "  \"warm_over_cold_throughput\": {warm_over_cold:.2},\n"
    ));
    out.push_str(&format!(
        "  \"compare\": {{\"requests\": {}, \"cold_single_rps\": {:.1}, \
         \"cold_batched_rps\": {:.1}, \"batched_over_single_cold\": {:.2}}},\n",
        compare.requests,
        compare.cold_single_rps,
        compare.cold_batched_rps,
        compare.batched_over_single_cold
    ));
    out.push_str(&format!(
        "  \"cache_compare\": {{\"threads\": {}, \"keys\": {}, \"striped_shards\": {}, \
         \"global_ops_per_sec\": {:.1}, \"striped_ops_per_sec\": {:.1}, \
         \"striped_over_global\": {:.2}}},\n",
        cache_compare.threads,
        cache_compare.keys,
        cache_compare.striped_shards,
        cache_compare.global_ops_per_sec,
        cache_compare.striped_ops_per_sec,
        cache_compare.striped_over_global
    ));
    out.push_str(&format!(
        "  \"final_stats\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"cache_entries\": {}, \"busy_rejections\": {}, \
         \"latency_us_max\": {}, \"batches\": {}, \"batch_items\": {}, \
         \"batch_hits\": {}, \"batch_misses\": {}, \"batch_errors\": {}}}\n}}\n",
        final_stats.requests,
        final_stats.hits,
        final_stats.misses,
        final_stats.evictions,
        final_stats.cache_entries,
        final_stats.busy_rejections,
        final_stats.latency_us_max,
        final_stats.batches,
        final_stats.batch_items,
        final_stats.batch_hits,
        final_stats.batch_misses,
        final_stats.batch_errors
    ));
    std::fs::write(path, out)
}

// ---------------------------------------------------------------------------
// Open-loop capacity mode
// ---------------------------------------------------------------------------

/// Everything measured for one topology in open-loop mode.
struct TopoReport {
    name: &'static str,
    backends: usize,
    soak_rate: u64,
    soak: OpenLoopRun,
    hits: u64,
    misses: u64,
    requests: u64,
    hit_rate: f64,
    server_service_p99_us: u64,
    knee: Option<Knee>,
}

/// Soak (and optionally knee-search) the server at `addr`.
fn run_open_topology(
    name: &'static str,
    backends: usize,
    addr: &str,
    args: &LoadgenArgs,
    open: &OpenArgs,
    works: &[Work],
) -> TopoReport {
    let mut control = match Client::connect_retry(addr, args.connect_timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    };
    let before = control.stats().expect("stats RPC");
    let spec = OpenLoopSpec {
        rate_rps: open.rate_rps,
        requests: open.requests,
        connections: args.concurrency,
        seed: open.seed,
        zipf_s: open.zipf_s,
        batch_size: open.batch_size,
    };
    eprintln!(
        "loadgen[{name}]: open-loop soak, {} entries at {} req/s over {} connection(s)",
        spec.requests, spec.rate_rps, spec.connections
    );
    let schedule = build_schedule(&spec, works);
    let soak = match run_open_loop(addr, spec.connections, &schedule) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("loadgen[{name}]: open-loop run failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "loadgen[{name}]: soak p50 {}us p99 {}us p999 {}us (naive p99 {}us), \
         achieved {:.1} req/s, {} error(s)",
        soak.hist.value_at_quantile(0.50),
        soak.hist.value_at_quantile(0.99),
        soak.hist.value_at_quantile(0.999),
        soak.naive_hist.value_at_quantile(0.99),
        soak.achieved_rps,
        soak.errors,
    );

    let knee = open.knee.then(|| {
        let mut probe = |rate: u64| -> (u64, f64) {
            let probe_spec = OpenLoopSpec {
                rate_rps: rate,
                // Bound each probe to ~2s of offered schedule so the
                // bisection stays fast at low rates.
                requests: open.requests.min((rate as usize * 2).max(200)),
                ..spec.clone()
            };
            let sched = build_schedule(&probe_spec, works);
            match run_open_loop(addr, probe_spec.connections, &sched) {
                Ok(run) => {
                    let p99 = run.hist.value_at_quantile(0.99);
                    eprintln!(
                        "loadgen[{name}]: probe {rate} req/s -> p99 {p99}us \
                         (achieved {:.1} req/s)",
                        run.achieved_rps
                    );
                    (p99, run.achieved_rps)
                }
                Err(e) => {
                    eprintln!("loadgen[{name}]: probe {rate} req/s failed: {e}");
                    (u64::MAX, 0.0)
                }
            }
        };
        let knee = find_knee(open.rate_min, open.rate_max, open.slo_p99_us, &mut probe);
        eprintln!(
            "loadgen[{name}]: knee {} req/s under p99 SLO {}us ({} probes)",
            knee.max_rps,
            knee.slo_p99_us,
            knee.probes.len()
        );
        knee
    });

    let after = control.stats().expect("stats RPC");
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let requests = after.requests - before.requests;
    TopoReport {
        name,
        backends,
        soak_rate: open.rate_rps,
        soak,
        hits,
        misses,
        requests,
        hit_rate: if requests == 0 {
            0.0
        } else {
            hits as f64 / requests as f64
        },
        server_service_p99_us: after.service_hist.value_at_quantile(0.99),
        knee,
    }
}

fn knee_json(knee: &Knee) -> String {
    let probes: Vec<String> = knee
        .probes
        .iter()
        .map(|p| {
            format!(
                "{{\"rate_rps\": {}, \"p99_us\": {}, \"achieved_rps\": {:.1}, \"ok\": {}}}",
                p.rate_rps, p.p99_us, p.achieved_rps, p.ok
            )
        })
        .collect();
    format!(
        "{{\"slo_p99_us\": {}, \"max_rps\": {}, \"p99_us_at_knee\": {}, \"probes\": [{}]}}",
        knee.slo_p99_us,
        knee.max_rps,
        knee.p99_us_at_knee,
        probes.join(", ")
    )
}

fn topo_json(t: &TopoReport) -> String {
    let h = &t.soak.hist;
    let mut out = format!(
        "    {{\"name\": \"{}\", \"backends\": {},\n     \"soak\": {{\"rate_rps\": {}, \
         \"entries\": {}, \"items\": {}, \"errors\": {}, \"wall_seconds\": {:.3}, \
         \"achieved_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
         \"mean_us\": {:.1}, \"max_us\": {}, \"naive_p99_us\": {}, \"hits\": {}, \
         \"misses\": {}, \"requests\": {}, \"hit_rate\": {:.4}, \
         \"server_service_p99_us\": {}, \"hist\": {}}}",
        t.name,
        t.backends,
        t.soak_rate,
        t.soak.entries,
        t.soak.items,
        t.soak.errors,
        t.soak.wall_seconds,
        t.soak.achieved_rps,
        h.value_at_quantile(0.50),
        h.value_at_quantile(0.99),
        h.value_at_quantile(0.999),
        h.mean(),
        h.max(),
        t.soak.naive_hist.value_at_quantile(0.99),
        t.hits,
        t.misses,
        t.requests,
        t.hit_rate,
        t.server_service_p99_us,
        h.to_json(),
    );
    if let Some(knee) = &t.knee {
        out.push_str(&format!(",\n     \"knee\": {}", knee_json(knee)));
    }
    out.push('}');
    out
}

fn write_capacity_report(
    path: &str,
    args: &LoadgenArgs,
    open: &OpenArgs,
    topologies: &[TopoReport],
) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"bench\": \"capacity\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"rate_rps\": {}, \"requests\": {}, \"connections\": {}, \
         \"seed\": {}, \"zipf_s\": {}, \"batch_size\": {}, \"slo_p99_us\": {}, \
         \"soak\": {}, \"knee\": {}, \"rate_min\": {}, \"rate_max\": {}}},\n",
        open.rate_rps,
        open.requests,
        args.concurrency,
        open.seed,
        open.zipf_s,
        open.batch_size,
        open.slo_p99_us,
        open.soak,
        open.knee,
        open.rate_min,
        open.rate_max,
    ));
    out.push_str("  \"topologies\": [\n");
    let body: Vec<String> = topologies.iter().map(topo_json).collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out)
}

fn run_open_mode(args: &LoadgenArgs, open: &OpenArgs) {
    let works = pass_leg_works(args.small, &args.pass).expect("pass validated at parse");
    let mut topologies = Vec::new();
    let mut servers: Vec<ServerHandle> = Vec::new();

    if let Some(addr) = &args.addr {
        topologies.push(run_open_topology("external", 0, addr, args, open, &works));
        if args.shutdown {
            if let Ok(mut c) = Client::connect_retry(addr, args.connect_timeout) {
                let _ = c.shutdown_server();
            }
        }
    } else {
        // Topology 1: one in-process server.
        let single = spawn(ServerConfig {
            workers: args.workers,
            ..ServerConfig::default()
        })
        .expect("spawn in-process server");
        let addr = single.local_addr().to_string();
        topologies.push(run_open_topology("single", 0, &addr, args, open, &works));
        single.shutdown();

        // Topology 2: a 3-backend fleet behind the router.
        let backends: Vec<ServerHandle> = (0..3)
            .map(|_| {
                spawn(ServerConfig {
                    workers: args.workers,
                    ..ServerConfig::default()
                })
                .expect("spawn backend")
            })
            .collect();
        let router = spawn_router(RouterConfig {
            backends: backends
                .iter()
                .map(|b| b.local_addr().to_string())
                .collect(),
            ..RouterConfig::default()
        })
        .expect("spawn router");
        let addr = router.local_addr().to_string();
        topologies.push(run_open_topology(
            "routed",
            backends.len(),
            &addr,
            args,
            open,
            &works,
        ));
        router.shutdown();
        servers.extend(backends);
    }

    match write_capacity_report(&args.out, args, open, &topologies) {
        Ok(()) => eprintln!("loadgen: wrote {}", args.out),
        Err(e) => {
            eprintln!("loadgen: could not write {}: {e}", args.out);
            std::process::exit(1);
        }
    }
    for server in servers {
        server.shutdown();
    }
    let errors: u64 = topologies.iter().map(|t| t.soak.errors).sum();
    if errors > 0 {
        eprintln!("loadgen: {errors} soak response(s) carried errors");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Closed-loop mode (the original loadgen flow)
// ---------------------------------------------------------------------------

fn run_closed_mode(args: &LoadgenArgs, closed: &ClosedArgs) {
    // Either connect out, or boot an in-process server.
    let (addr, local) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = spawn(ServerConfig {
                workers: args.workers,
                ..ServerConfig::default()
            })
            .expect("spawn in-process server");
            (handle.local_addr().to_string(), Some(handle))
        }
    };
    let mut control = match Client::connect_retry(&addr, args.connect_timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    };
    let works = pass_leg_works(args.small, &args.pass).expect("pass validated at parse");
    eprintln!(
        "loadgen: {} requests/pass x {} passes, {} connection(s), {}",
        works.len(),
        closed.passes,
        args.concurrency,
        if closed.batch == 0 {
            format!("window {}", closed.window)
        } else {
            format!("batches of {}", closed.batch)
        }
    );

    let mut passes = Vec::with_capacity(closed.passes);
    for i in 0..closed.passes {
        let p = run_pass(&addr, &works, args.concurrency, closed, &mut control);
        eprintln!(
            "  pass {i}: {:>6} req in {:>7.3}s  {:>9.1} req/s  hit-rate {:>5.1}%  \
             mean latency {:>8.1}us{}",
            p.requests,
            p.wall_seconds,
            p.throughput_rps,
            100.0 * p.hit_rate,
            p.mean_latency_us,
            if p.errors > 0 {
                format!("  ({} errors)", p.errors)
            } else {
                String::new()
            }
        );
        passes.push(p);
    }

    let final_stats = control.stats().expect("stats RPC");
    if passes.len() > 1 {
        let cold = passes[0].throughput_rps;
        let warm = passes.last().unwrap().throughput_rps;
        eprintln!(
            "loadgen: warm/cold throughput {:.1}x, second-pass hit rate {:.1}%",
            warm / cold.max(1e-9),
            100.0 * passes[1].hit_rate
        );
    }

    // Framing comparison on fresh in-process servers (independent of
    // --addr: the point is the framing, not the target server's state).
    let compare = run_compare(args.workers);
    eprintln!(
        "loadgen: compare ({} GPU requests, cold): single {:.0} req/s, batched {:.0} req/s \
         ({:.1}x)",
        compare.requests,
        compare.cold_single_rps,
        compare.cold_batched_rps,
        compare.batched_over_single_cold
    );

    // Striped-vs-global warm-hit comparison (in-process, independent of
    // the target server: the point is the cache's lock architecture).
    let cache_compare = run_cache_compare(args.concurrency);
    eprintln!(
        "loadgen: cache compare ({} threads, {} hot keys): global-lock {:.2}M ops/s, \
         striped {:.2}M ops/s ({:.1}x)",
        cache_compare.threads,
        cache_compare.keys,
        cache_compare.global_ops_per_sec / 1e6,
        cache_compare.striped_ops_per_sec / 1e6,
        cache_compare.striped_over_global
    );

    match write_report(
        &args.out,
        closed,
        &ClosedSummary {
            concurrency: args.concurrency,
            n_requests: works.len(),
            final_stats: &final_stats,
        },
        &passes,
        &compare,
        &cache_compare,
    ) {
        Ok(()) => eprintln!("loadgen: wrote {}", args.out),
        Err(e) => {
            eprintln!("loadgen: could not write {}: {e}", args.out);
            std::process::exit(1);
        }
    }
    if args.shutdown {
        let _ = control.shutdown_server();
    }
    if let Some(handle) = local {
        handle.shutdown();
    }
    let errors: u64 = passes.iter().map(|p| p.errors).sum();
    if errors > 0 {
        eprintln!("loadgen: {errors} request(s) failed");
        std::process::exit(1);
    }
}

fn main() {
    let args = match parse_loadgen_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("loadgen: {err}");
            std::process::exit(2);
        }
    };
    match args.mode.clone() {
        Mode::Closed(closed) => run_closed_mode(&args, &closed),
        Mode::Open(open) => run_open_mode(&args, &open),
    }
}
