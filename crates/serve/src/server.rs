//! The TCP server: accept loop, per-connection reader/writer threads, the
//! shared report cache, and the worker-pool dispatch path.
//!
//! # Threading model
//!
//! * One acceptor thread polls a non-blocking listener so shutdown never
//!   hangs in `accept`.
//! * Each connection gets a **reader** thread (parses request lines,
//!   serves cache hits inline, dispatches misses to the shared
//!   [`WorkerPool`]) and a **writer** thread (reassembles responses into
//!   request order by sequence number, so pipelined clients always read
//!   answers in the order they asked).
//! * The pool is the only place simulations run; its bounded queue is the
//!   overload valve — a full queue turns into an immediate `busy` error,
//!   never a blocked reader.
//!
//! # Cache, striping, and single-flight
//!
//! The report cache is a [`StripedCache`]: N independent LRU shards
//! selected by the stable hash of the canonical key, so connections
//! touching different keys never serialize on one global lock, and hit
//! bodies are shared `Arc<str>` handles cloned by pointer rather than by
//! content. Concurrent misses on the *same* key collapse via the cache's
//! per-shard single-flight registry: the first requester leads the one
//! simulation, later requesters join as waiters whose response callbacks
//! fire when the leader completes. A leader must complete its flight on
//! **every** path (success, deadline, storm, panic, pool refusal) — a
//! leaked flight would strand its followers forever.
//!
//! # Counter discipline
//!
//! `hits` and `misses` live in the cache's per-shard counters (the
//! `shards` op exposes them; their sums are the global `stats` numbers).
//! A hit is counted at each response-delivery point: the reader's inline
//! lookup, a dedup follower inside a batch, or a single-flight follower
//! when its leader completes — followers' bytes came from the
//! cache-to-be, so they are hits. A miss is counted exactly once per
//! simulation actually run, by the leader. Rejections (busy / deadline /
//! parse / bad-request / shutting-down) increment their own counters and
//! are excluded from `requests`; a follower whose leader fails inherits
//! the same typed error and is accounted as the same kind of rejection.
//! So `hits + misses == requests` holds exactly at any quiescent point —
//! the `stats` RPC invariant the determinism test pins.
//!
//! # Batch execution
//!
//! A `batch` request occupies a *span* of sequence numbers: item `i` of an
//! `n`-item batch is assigned `seq + i` and the summary line `seq + n`, so
//! the writer's ordinary seq reassembly streams items back in item order,
//! interleaving nothing else into the span. Per-item cache hits are
//! answered inline by the reader without consuming a worker slot;
//! duplicate canonical keys within one batch collapse onto a single
//! simulation (the first item is the miss, followers are hits). The misses
//! become one shared `BatchRun` work list driven by at most
//! `batch_chunk` runner jobs; each runner re-enqueues itself at the *back*
//! of the pool FIFO after every simulation, so a giant sweep cannot starve
//! interleaved single requests or other batches. The batch counters keep
//! the invariant `batch_hits + batch_misses + batch_errors == batch_items`
//! at any quiescent point.
//!
//! # Fault seams
//!
//! When [`ServerConfig::faults`] carries an armed [`FaultPoint`], the
//! server consults it at every I/O and dispatch seam: per request line
//! read (`read`), per response line written (`write`, `partial`, `delay`),
//! and per simulation dispatched (`panic`, `deadline`). Every seam is a
//! single `Option` branch when unarmed — the production path pays nothing.
//! Injected socket faults shut the stream down `Both` ways explicitly
//! because `shared.conns` holds a dup'd handle that would otherwise keep
//! the FD open; injected panics are raised *inside* the dispatch
//! `catch_unwind` so the client always receives a typed `worker-crashed`
//! response instead of a hole in the writer's sequence space.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind as IoErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iconv_faults::{FaultPoint, FaultSite, Injection};
use iconv_par::{Job, PoolBusy, WorkerPool};
use iconv_trace::TraceSink;

use crate::cache::{Admission, Body, FlightOutcome, StripedCache};
use crate::engine;
use crate::key;
use crate::protocol::{
    self, batch_summary_body, error_body, finish_item_response, finish_response, pong_body,
    shards_body, shutdown_body, stats_body, ErrorKind, LatencyHist, Request, StatsSnapshot, Work,
};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads running simulations.
    pub workers: usize,
    /// Bounded job-queue capacity (overload backpressure threshold).
    pub queue_capacity: usize,
    /// Report-cache capacity in entries (spread across the shards).
    pub cache_capacity: usize,
    /// Lock shards in the report cache. `0` means
    /// [`StripedCache::DEFAULT_SHARDS`]; `1` degenerates to the old
    /// single-lock cache (useful for comparison benchmarks).
    pub cache_shards: usize,
    /// Maximum runner jobs a single batch may hold in the pool at once
    /// (the in-flight chunk). `0` means "as many as there are workers".
    /// Items beyond the chunk wait on the batch's own work list, so one
    /// giant sweep never monopolizes the queue against other clients.
    pub batch_chunk: usize,
    /// Armed fault plan consulted at the I/O and dispatch seams (see the
    /// module-level *Fault seams* notes). `None` — the production default
    /// — compiles every seam down to a branch on this `Option`.
    pub faults: Option<Arc<dyn FaultPoint>>,
    /// Persistent tune-store path (`served --tune-cache`). Loaded at boot
    /// — seeding both the best-config store and the response cache, so a
    /// warm boot answers tunes without re-searching — and saved back on
    /// graceful shutdown. `None` keeps tunes process-local.
    pub tune_cache_path: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: iconv_par::default_jobs(),
            queue_capacity: 1024,
            cache_capacity: 16 * 1024,
            cache_shards: 0,
            batch_chunk: 0,
            faults: None,
            tune_cache_path: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    busy: AtomicU64,
    deadline: AtomicU64,
    parse_errors: AtomicU64,
    latency_us_total: AtomicU64,
    latency_us_max: AtomicU64,
    batches: AtomicU64,
    batch_items: AtomicU64,
    batch_hits: AtomicU64,
    batch_misses: AtomicU64,
    batch_errors: AtomicU64,
    worker_crashes: AtomicU64,
    /// Completed design-space searches answered, however they arrived
    /// (`tune` op, batch item, or the implicit search behind
    /// `"hw":"tuned"`). Ledger: `tunes == tune_searches + tune_cached`.
    tunes: AtomicU64,
    /// Tunes that actually ran the search (cache/store misses).
    tune_searches: AtomicU64,
    /// Tunes answered from the cache, the tune store, or a joined flight.
    tune_cached: AtomicU64,
    /// Service-time histograms, striped by cache shard so concurrent
    /// recorders contend no harder than the cache itself; the `stats` op
    /// merges the stripes (exact — the layout is fixed). Sized to the
    /// cache's shard count at spawn.
    service_hists: Vec<Mutex<LatencyHist>>,
}

impl Counters {
    fn with_stripes(n: usize) -> Self {
        Self {
            service_hists: (0..n.max(1))
                .map(|_| Mutex::new(LatencyHist::new()))
                .collect(),
            ..Self::default()
        }
    }

    /// Record one successful request's service time, stamped from `since`
    /// (request receipt). `stripe` is the request's cache-shard index —
    /// already in hand at every call site — so recording contends only
    /// with requests of the same shard.
    fn record_latency(&self, since: Instant, stripe: usize) {
        let us = since.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.latency_us_total.fetch_add(us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(us, Ordering::Relaxed);
        let slot = stripe % self.service_hists.len();
        self.service_hists[slot]
            .lock()
            .expect("latency stripe poisoned")
            .record(us);
    }

    /// Merge every stripe into one histogram (the `stats` view).
    fn merged_hist(&self) -> LatencyHist {
        let mut all = LatencyHist::new();
        for stripe in &self.service_hists {
            all.merge(&stripe.lock().expect("latency stripe poisoned"));
        }
        all
    }
}

struct Shared {
    counters: Counters,
    cache: StripedCache,
    pool: WorkerPool,
    workers: usize,
    /// Armed fault plan, if any (see [`ServerConfig::faults`]).
    faults: Option<Arc<dyn FaultPoint>>,
    /// Resolved in-flight runner cap per batch (see [`ServerConfig::batch_chunk`]).
    batch_chunk: usize,
    /// Best-config results of every completed design-space search, keyed
    /// by canonical tune key — what `"hw":"tuned"` requests consult, and
    /// what `--tune-cache` persists across restarts.
    tune_store: Mutex<iconv_tune::TuneCache>,
    /// Where to save the tune store on graceful shutdown.
    tune_cache_path: Option<std::path::PathBuf>,
    shutting_down: AtomicBool,
    /// Set by the `shutdown` op; `wait_shutdown_requested` blocks on it.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    /// Read-half clones of live connections, shut down to unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let mut req = self
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        *req = true;
        drop(req);
        self.shutdown_cv.notify_all();
    }

    fn snapshot(&self) -> StatsSnapshot {
        let c = &self.counters;
        let (queue_depth, in_flight) =
            (self.pool.queue_depth() as u64, self.pool.in_flight() as u64);
        let (faults_injected, faults_observed) = self.faults.as_ref().map_or((0, 0), |f| {
            let fc = f.counters();
            (fc.injected_total(), fc.observed_total())
        });
        StatsSnapshot {
            requests: c.served.load(Ordering::Relaxed),
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            evictions: self.cache.evictions(),
            cache_entries: self.cache.len() as u64,
            cache_capacity: self.cache.capacity() as u64,
            queue_depth,
            in_flight,
            busy_rejections: c.busy.load(Ordering::Relaxed),
            deadline_expired: c.deadline.load(Ordering::Relaxed),
            parse_errors: c.parse_errors.load(Ordering::Relaxed),
            latency_us_total: c.latency_us_total.load(Ordering::Relaxed),
            latency_us_max: c.latency_us_max.load(Ordering::Relaxed),
            workers: self.workers as u64,
            batches: c.batches.load(Ordering::Relaxed),
            batch_items: c.batch_items.load(Ordering::Relaxed),
            batch_hits: c.batch_hits.load(Ordering::Relaxed),
            batch_misses: c.batch_misses.load(Ordering::Relaxed),
            batch_errors: c.batch_errors.load(Ordering::Relaxed),
            worker_crashes: c.worker_crashes.load(Ordering::Relaxed),
            faults_injected,
            faults_observed,
            tunes: c.tunes.load(Ordering::Relaxed),
            tune_searches: c.tune_searches.load(Ordering::Relaxed),
            tune_cached: c.tune_cached.load(Ordering::Relaxed),
            service_hist: c.merged_hist(),
        }
    }

    /// Mirror the counters into an `iconv-trace` sink (the `stats` RPC is
    /// the live view; this writes the same numbers as trace counters for
    /// offline tooling).
    fn emit_trace(&self, sink: &mut dyn TraceSink) {
        let s = self.snapshot();
        sink.counter("serve.requests", s.requests);
        sink.counter("serve.cache_hits", s.hits);
        sink.counter("serve.cache_misses", s.misses);
        sink.counter("serve.cache_evictions", s.evictions);
        sink.counter("serve.queue_depth", s.queue_depth);
        sink.counter("serve.busy_rejections", s.busy_rejections);
        sink.counter("serve.deadline_expired", s.deadline_expired);
        sink.counter("serve.parse_errors", s.parse_errors);
        sink.counter("serve.latency_us_total", s.latency_us_total);
        sink.counter("serve.latency_us_max", s.latency_us_max);
        sink.counter("serve.batch.batches", s.batches);
        sink.counter("serve.batch.items", s.batch_items);
        sink.counter("serve.batch.hits", s.batch_hits);
        sink.counter("serve.batch.misses", s.batch_misses);
        sink.counter("serve.batch.errors", s.batch_errors);
        sink.counter("serve.worker_crashes", s.worker_crashes);
        sink.counter("serve.tune.tunes", s.tunes);
        sink.counter("serve.tune.searches", s.tune_searches);
        sink.counter("serve.tune.cached", s.tune_cached);
        sink.counter("serve.fault.injected", s.faults_injected);
        sink.counter("serve.fault.observed", s.faults_observed);
        for shard in self.cache.shard_stats() {
            let i = shard.shard as usize;
            sink.counter_indexed("serve.shard", i, "hits", shard.hits);
            sink.counter_indexed("serve.shard", i, "misses", shard.misses);
            sink.counter_indexed("serve.shard", i, "evictions", shard.evictions);
            sink.counter_indexed("serve.shard", i, "entries", shard.entries);
        }
        if let Some(f) = &self.faults {
            let fc = f.counters();
            for site in FaultSite::ALL {
                sink.counter(
                    &format!("serve.fault.injected.{}", site.name()),
                    fc.injected[site.index()],
                );
                sink.counter(
                    &format!("serve.fault.observed.{}", site.name()),
                    fc.observed[site.index()],
                );
            }
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the process-local threads abruptly;
/// call `shutdown` for the graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot (same numbers as the `stats` RPC).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// The per-stripe service-time histograms (one per cache shard), as
    /// recorded so far. Their bucket-wise sum is exactly the `stats` op's
    /// `service_hist` — the ledger identity the capacity tests pin.
    pub fn service_hist_stripes(&self) -> Vec<LatencyHist> {
        self.shared
            .counters
            .service_hists
            .iter()
            .map(|m| m.lock().expect("latency stripe poisoned").clone())
            .collect()
    }

    /// Emit the counters into an `iconv-trace` sink.
    pub fn emit_trace(&self, sink: &mut dyn TraceSink) {
        self.shared.emit_trace(sink);
    }

    /// Block until some client sends the `shutdown` op (or
    /// [`ServerHandle::request_shutdown`] is called locally).
    pub fn wait_shutdown_requested(&self) {
        let mut req = self
            .shared
            .shutdown_requested
            .lock()
            .expect("flag poisoned");
        while !*req {
            req = self.shared.shutdown_cv.wait(req).expect("flag poisoned");
        }
    }

    /// Begin refusing new work, as if a `shutdown` op had arrived.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Graceful teardown: stop accepting connections, drain queued and
    /// in-flight simulations, deliver their responses, then close
    /// connections and join every thread.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.request_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Drain the pool: queued jobs run to completion and push their
        // responses into the writers before this returns. The pool's
        // `shutdown` takes `&self`, so batch runners resubmitting their
        // continuations race against it without any outer lock to deadlock
        // on — a refused continuation just keeps draining inline.
        self.shared.pool.shutdown();
        // Unblock readers parked in read(); keeps the write half intact so
        // writers can still flush drained responses.
        for conn in self.shared.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let threads: Vec<_> = {
            let mut guard = self.shared.conn_threads.lock().expect("threads poisoned");
            guard.drain(..).collect()
        };
        for h in threads {
            let _ = h.join();
        }
        // Persist every search this process completed (best-effort: a
        // full disk must not turn a clean drain into a crash).
        if let Some(path) = &self.shared.tune_cache_path {
            let store = self.shared.tune_store.lock().expect("tune store poisoned");
            if let Err(e) = store.save(path) {
                eprintln!("iconv-serve: {e}");
            }
        }
        self.shared.snapshot()
    }
}

/// Spawn a server on `cfg.addr`.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let batch_chunk = if cfg.batch_chunk == 0 {
        workers
    } else {
        cfg.batch_chunk
    };
    let cache_shards = if cfg.cache_shards == 0 {
        StripedCache::DEFAULT_SHARDS
    } else {
        cfg.cache_shards
    };
    // A corrupt tune cache refuses the boot rather than silently serving
    // a cold store — the operator asked for persistence and did not get it.
    let tune_store = match &cfg.tune_cache_path {
        Some(path) => iconv_tune::TuneCache::load(path)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
        None => iconv_tune::TuneCache::new(),
    };
    let shared = Arc::new(Shared {
        counters: Counters::with_stripes(cache_shards),
        cache: StripedCache::new(cfg.cache_capacity.max(1), cache_shards),
        pool: WorkerPool::new(workers, cfg.queue_capacity.max(1)),
        workers,
        batch_chunk,
        tune_store: Mutex::new(tune_store),
        tune_cache_path: cfg.tune_cache_path,
        shutting_down: AtomicBool::new(false),
        shutdown_requested: Mutex::new(false),
        shutdown_cv: Condvar::new(),
        faults: cfg.faults,
        conns: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
    });
    // Warm the response cache from the loaded store: a tune for a
    // persisted key is a plain cache hit on the very first request.
    {
        let store = shared.tune_store.lock().expect("tune store poisoned");
        for (tune_key, est) in store.iter() {
            shared
                .cache
                .insert(tune_key.to_owned(), Body::from(protocol::tune_body(est)));
        }
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("iconv-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor")
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(e) = start_connection(stream, shared) {
                    eprintln!("iconv-serve: failed to start connection: {e}");
                }
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn start_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let read_half = stream.try_clone()?;
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .push(stream.try_clone()?);
    let (tx, rx) = channel::<(u64, String)>();
    // Per-connection containment: a panic inside either half is absorbed
    // here, tearing down only this connection's threads — the acceptor,
    // the pool, and every other connection stay up.
    let writer = {
        let faults = shared.faults.clone();
        std::thread::Builder::new()
            .name("iconv-serve-write".to_owned())
            .spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    writer_loop(stream, &rx, faults.as_ref());
                }));
            })?
    };
    let reader = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("iconv-serve-read".to_owned())
            .spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| reader_loop(read_half, &shared, &tx)));
            })?
    };
    let mut threads = shared.conn_threads.lock().expect("threads poisoned");
    threads.push(writer);
    threads.push(reader);
    Ok(())
}

/// Reassemble `(seq, line)` messages into ascending-`seq` order and write
/// them out, flushing whenever the channel momentarily runs dry.
fn writer_loop(
    stream: TcpStream,
    rx: &std::sync::mpsc::Receiver<(u64, String)>,
    faults: Option<&Arc<dyn FaultPoint>>,
) {
    let mut out = BufWriter::new(stream);
    let mut next_seq = 0u64;
    let mut held: BinaryHeap<std::cmp::Reverse<(u64, String)>> = BinaryHeap::new();
    let write = |out: &mut BufWriter<TcpStream>, line: &str| -> bool {
        // Fault seams, consulted once per response line. A `Delay` stalls
        // mid-stream with everything so far flushed (slow-loris); a
        // `PartialWrite` flushes a prefix of the line and drops the
        // connection; a `SockWrite` drops it cold. The explicit
        // `Shutdown::Both` matters: `shared.conns` holds a dup'd handle
        // that would otherwise keep the socket open and the client blocked.
        if let Some(f) = faults {
            if let Some(Injection::Delay { ms }) = f.decide(FaultSite::Delay) {
                let _ = out.flush();
                std::thread::sleep(Duration::from_millis(ms));
                f.observe(FaultSite::Delay);
            }
            if let Some(Injection::PartialWrite { keep }) = f.decide(FaultSite::PartialWrite) {
                let keep = keep.min(line.len());
                let _ = out.write_all(&line.as_bytes()[..keep]);
                let _ = out.flush();
                let _ = out.get_ref().shutdown(Shutdown::Both);
                f.observe(FaultSite::PartialWrite);
                return false;
            }
            if f.decide(FaultSite::SockWrite).is_some() {
                let _ = out.get_ref().shutdown(Shutdown::Both);
                f.observe(FaultSite::SockWrite);
                return false;
            }
        }
        out.write_all(line.as_bytes()).is_ok() && out.write_all(b"\n").is_ok()
    };
    'recv: while let Ok(msg) = rx.recv() {
        held.push(std::cmp::Reverse(msg));
        // Drain everything already queued so a burst (a batch span being
        // streamed) is written and flushed once, not per line.
        while let Ok(more) = rx.try_recv() {
            held.push(std::cmp::Reverse(more));
        }
        while let Some(std::cmp::Reverse((seq, _))) = held.peek() {
            if *seq != next_seq {
                break;
            }
            let std::cmp::Reverse((_, line)) = held.pop().expect("peeked");
            if !write(&mut out, &line) {
                break 'recv;
            }
            next_seq += 1;
        }
        // Nothing immediately pending: push what we have to the client.
        let _ = out.flush();
    }
    // Channel closed (reader and all jobs done): drain any stragglers.
    while let Some(std::cmp::Reverse((_, line))) = held.pop() {
        if !write(&mut out, &line) {
            break;
        }
    }
    let _ = out.flush();
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>, tx: &Sender<(u64, String)>) {
    let mut reader = BufReader::new(stream);
    let mut seq = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        // Fault seam: an injected read error behaves exactly like a
        // mid-request network failure — the socket is shut down both ways
        // so the client sees the drop rather than a stall (the dup'd
        // handle in `shared.conns` would otherwise hold it open).
        if let Some(f) = &shared.faults {
            if f.decide(FaultSite::SockRead).is_some() {
                f.observe(FaultSite::SockRead);
                let _ = reader.get_ref().shutdown(Shutdown::Both);
                break;
            }
        }
        // A request consumes as many sequence numbers as it will emit
        // response lines (1 for everything except `batch`, which spans
        // n items + 1 summary).
        seq += handle_line(line.trim_end(), seq, shared, tx);
    }
}

/// One deduplicated simulation owed to a batch: the work, its cache key,
/// and every item index that asked for it (first = miss, rest = hits).
struct PendingSim {
    work: Work,
    key: String,
    items: Vec<usize>,
}

/// Shared state for one in-flight batch: the un-simulated work list, how
/// many item lines are still owed, and where the summary line goes.
struct BatchRun {
    shared: Arc<Shared>,
    tx: Sender<(u64, String)>,
    id: Option<String>,
    deadline: Option<Duration>,
    t0: Instant,
    n_items: u64,
    base_seq: u64,
    summary_seq: u64,
    pending: Mutex<VecDeque<PendingSim>>,
    /// Item lines still owed (misses, their dedup followers, and
    /// single-flight joins), **plus one sentinel unit** held by the
    /// admission pass itself: a joined flight's waiter may fire the
    /// instant it is registered, and the sentinel keeps such early
    /// completions from seeing the count hit zero and emitting the
    /// summary before admission finishes.
    remaining: AtomicUsize,
    errors: AtomicU64,
}

impl BatchRun {
    fn send_item(&self, item: usize, body: &str) {
        let _ = self.tx.send((
            self.base_seq + item as u64,
            finish_item_response(self.id.as_deref(), item, body),
        ));
    }

    /// Mark `k` owed item lines as sent; the runner that clears the last
    /// one emits the summary. The summary totals are stable by then: every
    /// error was added before its items were marked done.
    fn items_done(&self, k: usize) {
        if self.remaining.fetch_sub(k, Ordering::AcqRel) == k {
            let _ = self.tx.send((
                self.summary_seq,
                finish_response(
                    self.id.as_deref(),
                    &batch_summary_body(self.n_items, self.errors.load(Ordering::Acquire)),
                ),
            ));
        }
    }

    /// Settle one item that joined a flight led elsewhere (another
    /// connection, or another batch): count it, send its line, retire its
    /// owed unit. Runs as a single-flight waiter, outside any shard lock.
    fn settle_follower(&self, item: usize, shard: usize, is_tune: bool, outcome: &FlightOutcome) {
        let c = &self.shared.counters;
        match outcome {
            FlightOutcome::Ready(body) => {
                self.shared.cache.note_hit(shard);
                count_tune_cached(c, is_tune, 1);
                c.batch_hits.fetch_add(1, Ordering::Relaxed);
                c.served.fetch_add(1, Ordering::Relaxed);
                c.record_latency(self.t0, shard);
                self.send_item(item, body);
            }
            FlightOutcome::Failed(kind, detail) => {
                count_rejection(c, *kind);
                c.batch_errors.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.send_item(item, &error_body(*kind, detail));
            }
        }
        self.items_done(1);
    }

    /// Fail every item of a dedup group with one typed error, completing
    /// the group's flight so single-flight followers elsewhere inherit
    /// the same outcome (the caller has already bumped the kind-specific
    /// counter for its own items).
    fn fail_items(&self, sim: &PendingSim, kind: ErrorKind, detail: &str) {
        let k = sim.items.len();
        let c = &self.shared.counters;
        c.batch_errors.fetch_add(k as u64, Ordering::Relaxed);
        self.errors.fetch_add(k as u64, Ordering::Relaxed);
        self.shared
            .cache
            .complete(&sim.key, &FlightOutcome::Failed(kind, detail.to_owned()));
        let body = error_body(kind, detail);
        for &i in &sim.items {
            self.send_item(i, &body);
        }
        self.items_done(k);
    }

    /// Answer one deduplicated simulation: run it (or expire it), complete
    /// its flight, send every item line it owes, and retire those items.
    fn process(&self, sim: PendingSim) {
        let c = &self.shared.counters;
        let k = sim.items.len();
        if let Some(d) = self.deadline {
            if self.t0.elapsed() > d {
                c.deadline.fetch_add(k as u64, Ordering::Relaxed);
                self.fail_items(&sim, ErrorKind::Deadline, "deadline expired in queue");
                return;
            }
        }
        // Fault seams (mirrors the single-estimate job): a deadline storm
        // expires the whole dedup group; an injected panic is caught here
        // so every owed item line is still sent — the batch summary and
        // the writer's seq reassembly both depend on nothing going missing.
        if let Some(f) = &self.shared.faults {
            if f.decide(FaultSite::DeadlineStorm).is_some() {
                f.observe(FaultSite::DeadlineStorm);
                c.deadline.fetch_add(k as u64, Ordering::Relaxed);
                self.fail_items(&sim, ErrorKind::Deadline, "deadline expired in queue");
                return;
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = &self.shared.faults {
                if f.decide(FaultSite::WorkerPanic).is_some() {
                    f.observe(FaultSite::WorkerPanic);
                    panic!("iconv-faults: injected worker panic");
                }
            }
            engine::evaluate(&sim.work)
        }));
        let body: Body = match outcome {
            Ok(body) => Body::from(body),
            Err(_) => {
                c.worker_crashes.fetch_add(1, Ordering::Relaxed);
                self.fail_items(&sim, ErrorKind::WorkerCrashed, "simulation worker panicked");
                return;
            }
        };
        // Completing caches the body and answers every joined follower.
        let shard = self.shared.cache.shard_of(&sim.key);
        self.shared
            .cache
            .complete(&sim.key, &FlightOutcome::Ready(Arc::clone(&body)));
        // The first item of a dedup group is the miss that paid for the
        // simulation; followers are hits by construction.
        let is_tune = matches!(sim.work, Work::Tune { .. });
        self.shared.cache.note_miss(shard);
        note_tune_search(&self.shared, is_tune, &sim.key, &body);
        c.batch_misses.fetch_add(1, Ordering::Relaxed);
        if k > 1 {
            for _ in 1..k {
                self.shared.cache.note_hit(shard);
            }
            count_tune_cached(c, is_tune, k as u64 - 1);
            c.batch_hits.fetch_add(k as u64 - 1, Ordering::Relaxed);
        }
        c.served.fetch_add(k as u64, Ordering::Relaxed);
        for _ in 0..k {
            c.record_latency(self.t0, shard);
        }
        for &i in &sim.items {
            self.send_item(i, &body);
        }
        self.items_done(k);
    }

    /// Refuse everything still pending (pool rejected the batch's runners)
    /// and account the refusals; each refused group's flight completes
    /// Failed so joined followers are not stranded.
    fn refuse_all(&self, e: PoolBusy) {
        let kind = match e {
            PoolBusy::QueueFull => ErrorKind::Busy,
            PoolBusy::ShuttingDown => ErrorKind::ShuttingDown,
        };
        let detail = e.to_string();
        let drained: Vec<PendingSim> = {
            let mut pending = self.pending.lock().expect("batch pending poisoned");
            pending.drain(..).collect()
        };
        let c = &self.shared.counters;
        for sim in drained {
            if kind == ErrorKind::Busy {
                c.busy.fetch_add(sim.items.len() as u64, Ordering::Relaxed);
            }
            self.fail_items(&sim, kind, &detail);
        }
    }
}

/// Count a follower's inherited failure against the counter its kind
/// belongs to — rejections stay out of `requests`, exactly as if the
/// follower had led the flight and failed the same way itself. Worker
/// crashes are counted once per actual panic (by the leader), and drain
/// refusals have no dedicated counter, so both fall through.
fn count_rejection(c: &Counters, kind: ErrorKind) {
    match kind {
        ErrorKind::Busy => {
            c.busy.fetch_add(1, Ordering::Relaxed);
        }
        ErrorKind::Deadline => {
            c.deadline.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
}

/// Count `n` tunes answered without running a search (cache hit, joined
/// flight, dedup follower, or tune-store hit). No-op for ordinary
/// estimates — every response-delivery point calls this with its own
/// `is_tune`, which keeps `tunes == tune_searches + tune_cached` exact.
fn count_tune_cached(c: &Counters, is_tune: bool, n: u64) {
    if is_tune && n > 0 {
        c.tunes.fetch_add(n, Ordering::Relaxed);
        c.tune_cached.fetch_add(n, Ordering::Relaxed);
    }
}

/// A freshly-led tune search succeeded: count it and remember its winner
/// in the tune store (what `"hw":"tuned"` requests consult, and what
/// `--tune-cache` persists). The body was rendered by the engine, so
/// re-parsing it cannot fail; a hypothetical mismatch only skips the store.
fn note_tune_search(shared: &Shared, is_tune: bool, tune_key: &str, body: &str) {
    if !is_tune {
        return;
    }
    shared.counters.tunes.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .tune_searches
        .fetch_add(1, Ordering::Relaxed);
    if let Ok(protocol::Response::Tune { est, .. }) =
        protocol::parse_response(&finish_response(None, body))
    {
        shared
            .tune_store
            .lock()
            .expect("tune store poisoned")
            .insert(tune_key.to_owned(), est);
    }
}

/// A batch runner: take one simulation off the batch's work list, answer
/// it, then *yield* by re-enqueueing a continuation at the back of the
/// pool FIFO so interleaved requests from other clients get a turn. If the
/// pool refuses the continuation (full queue or draining), keep going
/// inline — progress is never sacrificed to fairness.
fn run_batch_step(run: &Arc<BatchRun>) {
    loop {
        let sim = {
            let mut pending = run.pending.lock().expect("batch pending poisoned");
            pending.pop_front()
        };
        let Some(sim) = sim else { return };
        run.process(sim);
        let cont = Arc::clone(run);
        if run
            .shared
            .pool
            .try_submit(move || run_batch_step(&cont))
            .is_ok()
        {
            return;
        }
    }
}

/// Handle one request line. Returns the number of sequence numbers the
/// request consumed (== response lines it will emit): 1 for everything
/// except a well-formed `batch`, which consumes `items + 1`.
fn handle_line(line: &str, seq: u64, shared: &Arc<Shared>, tx: &Sender<(u64, String)>) -> u64 {
    let t0 = Instant::now();
    let send = |line: String| {
        let _ = tx.send((seq, line));
    };
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(e) => {
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            send(finish_response(
                e.id.as_deref(),
                &error_body(e.kind, &e.detail),
            ));
            return 1;
        }
    };
    match req {
        Request::Ping { id } => send(finish_response(id.as_deref(), &pong_body())),
        Request::Stats { id } => {
            let body = stats_body(&shared.snapshot());
            send(finish_response(id.as_deref(), &body));
        }
        Request::Shards { id } => {
            let body = shards_body(&shared.cache.shard_stats());
            send(finish_response(id.as_deref(), &body));
        }
        Request::Shutdown { id } => {
            send(finish_response(id.as_deref(), &shutdown_body()));
            shared.request_shutdown();
        }
        Request::Estimate(req) => return handle_estimate(req, t0, seq, shared, tx),
        Request::TunedEstimate {
            id,
            shape,
            target,
            deadline_ms,
        } => return handle_tuned(id, shape, target, deadline_ms, t0, seq, shared, tx),
        Request::Batch {
            id,
            items,
            deadline_ms,
        } => return handle_batch(id, items, deadline_ms, t0, seq, shared, tx),
    }
    1
}

/// Admit and answer one estimate request (op `conv`, `gemm`, or `tune`):
/// cache fast path, single-flight admission, or a led worker job.
/// Returns the sequence span consumed (always 1).
fn handle_estimate(
    req: protocol::EstimateRequest,
    t0: Instant,
    seq: u64,
    shared: &Arc<Shared>,
    tx: &Sender<(u64, String)>,
) -> u64 {
    let send = |line: String| {
        let _ = tx.send((seq, line));
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        send(finish_response(
            req.id.as_deref(),
            &error_body(ErrorKind::ShuttingDown, "server is draining"),
        ));
        return 1;
    }
    let cache_key = key::canonical_key(&req.work);
    let shard = shared.cache.shard_of(&cache_key);
    let is_tune = matches!(req.work, Work::Tune { .. });
    // Hit fast path: served inline by the reader, deadline ignored
    // (a hit costs microseconds). One shard lock, pointer clone.
    if let Some(body) = shared.cache.get(&cache_key) {
        shared.cache.note_hit(shard);
        count_tune_cached(&shared.counters, is_tune, 1);
        shared.counters.served.fetch_add(1, Ordering::Relaxed);
        shared.counters.record_latency(t0, shard);
        send(finish_response(req.id.as_deref(), &body));
        return 1;
    }
    // Single-flight admission. The waiter fires if another
    // connection is already simulating this key: the follower's
    // bytes come from the cache-to-be, so it is a hit; on failure
    // it inherits the leader's typed error. A follower's own
    // deadline is moot — joining costs nothing, like a hit.
    let w_shared = Arc::clone(shared);
    let w_tx = tx.clone();
    let w_id = req.id.clone();
    let waiter = move |outcome: &FlightOutcome| {
        let line = match outcome {
            FlightOutcome::Ready(body) => {
                w_shared.cache.note_hit(shard);
                count_tune_cached(&w_shared.counters, is_tune, 1);
                w_shared.counters.served.fetch_add(1, Ordering::Relaxed);
                w_shared.counters.record_latency(t0, shard);
                finish_response(w_id.as_deref(), body)
            }
            FlightOutcome::Failed(kind, detail) => {
                count_rejection(&w_shared.counters, *kind);
                finish_response(w_id.as_deref(), &error_body(*kind, detail))
            }
        };
        let _ = w_tx.send((seq, line));
    };
    match shared.cache.admit(&cache_key, waiter) {
        Admission::Cached(body) => {
            // Raced in between the lock-free get and the admit:
            // an ordinary hit.
            shared.cache.note_hit(shard);
            count_tune_cached(&shared.counters, is_tune, 1);
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            shared.counters.record_latency(t0, shard);
            send(finish_response(req.id.as_deref(), &body));
            return 1;
        }
        Admission::Joined => return 1,
        Admission::Lead => {}
    }
    // We lead: run the one simulation. Every exit below completes
    // the flight exactly once so joined followers are answered.
    let err_id = req.id.clone();
    let job_shared = Arc::clone(shared);
    let job_tx = tx.clone();
    let job_key = cache_key.clone();
    let job = move || {
        let fail = |kind: ErrorKind, detail: &str| {
            job_shared
                .cache
                .complete(&job_key, &FlightOutcome::Failed(kind, detail.to_owned()));
            let _ = job_tx.send((
                seq,
                finish_response(req.id.as_deref(), &error_body(kind, detail)),
            ));
        };
        let deadline = req.deadline_ms.map(Duration::from_millis);
        if let Some(d) = deadline {
            if t0.elapsed() > d {
                job_shared.counters.deadline.fetch_add(1, Ordering::Relaxed);
                fail(ErrorKind::Deadline, "deadline expired in queue");
                return;
            }
        }
        // Fault seams: a deadline storm expires the request as if
        // it had aged out in the queue; an injected panic is raised
        // *inside* this catch so the typed `worker-crashed` line is
        // always emitted — a swallowed seq would wedge the writer's
        // reorder heap and hang the connection forever.
        if let Some(f) = &job_shared.faults {
            if f.decide(FaultSite::DeadlineStorm).is_some() {
                f.observe(FaultSite::DeadlineStorm);
                job_shared.counters.deadline.fetch_add(1, Ordering::Relaxed);
                fail(ErrorKind::Deadline, "deadline expired in queue");
                return;
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = &job_shared.faults {
                if f.decide(FaultSite::WorkerPanic).is_some() {
                    f.observe(FaultSite::WorkerPanic);
                    panic!("iconv-faults: injected worker panic");
                }
            }
            engine::evaluate(&req.work)
        }));
        let body: Body = match outcome {
            Ok(body) => Body::from(body),
            Err(_) => {
                job_shared
                    .counters
                    .worker_crashes
                    .fetch_add(1, Ordering::Relaxed);
                fail(ErrorKind::WorkerCrashed, "simulation worker panicked");
                return;
            }
        };
        // Completing caches the body and answers every follower.
        job_shared
            .cache
            .complete(&job_key, &FlightOutcome::Ready(Arc::clone(&body)));
        job_shared.cache.note_miss(shard);
        note_tune_search(&job_shared, is_tune, &job_key, &body);
        job_shared.counters.served.fetch_add(1, Ordering::Relaxed);
        job_shared.counters.record_latency(t0, shard);
        let _ = job_tx.send((seq, finish_response(req.id.as_deref(), &body)));
    };
    if let Err(e) = shared.pool.try_submit(job) {
        let kind = match e {
            PoolBusy::QueueFull => {
                shared.counters.busy.fetch_add(1, Ordering::Relaxed);
                ErrorKind::Busy
            }
            PoolBusy::ShuttingDown => ErrorKind::ShuttingDown,
        };
        // The refused leader still owes the flight its completion
        // (a follower may have joined between admit and here).
        shared
            .cache
            .complete(&cache_key, &FlightOutcome::Failed(kind, e.to_string()));
        send(finish_response(
            err_id.as_deref(),
            &error_body(kind, &e.to_string()),
        ));
    }
    1
}

/// Answer a `conv` spelled `"hw":"tuned"`: resolve the layer's tuned
/// configuration — from the tune store when the layer has been tuned
/// before, otherwise by running the design-space search on a worker — and
/// then estimate the layer under the winning concrete config. The resolve
/// contributes one tune-ledger bump (`tune_cached` on a store hit,
/// `tune_searches` when the search ran) and nothing to `hits`/`misses`;
/// the concrete estimate is an ordinary hit-or-miss request, so
/// `hits + misses == requests` is preserved. Returns the sequence span
/// consumed (always 1).
#[allow(clippy::too_many_arguments)]
fn handle_tuned(
    id: Option<String>,
    shape: iconv_tensor::ConvShape,
    target: protocol::TuneTarget,
    deadline_ms: Option<u64>,
    t0: Instant,
    seq: u64,
    shared: &Arc<Shared>,
    tx: &Sender<(u64, String)>,
) -> u64 {
    let send = |line: String| {
        let _ = tx.send((seq, line));
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        send(finish_response(
            id.as_deref(),
            &error_body(ErrorKind::ShuttingDown, "server is draining"),
        ));
        return 1;
    }
    let tune_key = key::canonical_key(&Work::Tune { shape, target });
    // Store fast path: the layer has been tuned before (this boot, or a
    // warm-loaded cache file). Delegating to `handle_estimate` gives the
    // concrete work the full ordinary treatment — cache, single-flight,
    // deadline — under its own canonical key.
    let stored = shared
        .tune_store
        .lock()
        .expect("tune store poisoned")
        .get(&tune_key)
        .copied();
    if let Some(est) = stored {
        count_tune_cached(&shared.counters, true, 1);
        return handle_estimate(
            protocol::EstimateRequest {
                id,
                work: est.best.to_work(shape),
                deadline_ms,
            },
            t0,
            seq,
            shared,
            tx,
        );
    }
    // Store miss: run the search plus the winner's estimate as one worker
    // job. No single-flight admission here — the tune store dedups
    // repeats, and concurrent first-tuners at worst race two identical
    // searches whose byte-identical results collapse in store and cache.
    let err_id = id.clone();
    let job_shared = Arc::clone(shared);
    let job_tx = tx.clone();
    let job = move || {
        let send = |line: String| {
            let _ = job_tx.send((seq, line));
        };
        if let Some(d) = deadline_ms.map(Duration::from_millis) {
            if t0.elapsed() > d {
                job_shared.counters.deadline.fetch_add(1, Ordering::Relaxed);
                send(finish_response(
                    id.as_deref(),
                    &error_body(ErrorKind::Deadline, "deadline expired in queue"),
                ));
                return;
            }
        }
        if let Some(f) = &job_shared.faults {
            if f.decide(FaultSite::DeadlineStorm).is_some() {
                f.observe(FaultSite::DeadlineStorm);
                job_shared.counters.deadline.fetch_add(1, Ordering::Relaxed);
                send(finish_response(
                    id.as_deref(),
                    &error_body(ErrorKind::Deadline, "deadline expired in queue"),
                ));
                return;
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = &job_shared.faults {
                if f.decide(FaultSite::WorkerPanic).is_some() {
                    f.observe(FaultSite::WorkerPanic);
                    panic!("iconv-faults: injected worker panic");
                }
            }
            let est = iconv_tune::tune(
                &iconv_tune::InProcessSource::new(),
                &shape,
                target,
                &iconv_tune::TuneOptions::default(),
            );
            let concrete = est.best.to_work(shape);
            let concrete_key = key::canonical_key(&concrete);
            let cached = job_shared.cache.get(&concrete_key);
            let hit = cached.is_some();
            let body = cached.unwrap_or_else(|| Body::from(engine::evaluate(&concrete)));
            (est, concrete_key, body, hit)
        }));
        let (est, concrete_key, body, hit) = match outcome {
            Ok(v) => v,
            Err(_) => {
                job_shared
                    .counters
                    .worker_crashes
                    .fetch_add(1, Ordering::Relaxed);
                send(finish_response(
                    id.as_deref(),
                    &error_body(ErrorKind::WorkerCrashed, "simulation worker panicked"),
                ));
                return;
            }
        };
        // The search ran: one tune-ledger bump, and the result is made
        // durable (tune store) and hot (striped cache under the tune key)
        // so the next asker — `tune` op or `"hw":"tuned"` — is a hit.
        let c = &job_shared.counters;
        c.tunes.fetch_add(1, Ordering::Relaxed);
        c.tune_searches.fetch_add(1, Ordering::Relaxed);
        job_shared
            .cache
            .insert(tune_key.clone(), Body::from(protocol::tune_body(&est)));
        job_shared
            .tune_store
            .lock()
            .expect("tune store poisoned")
            .insert(tune_key, est);
        // The winner's concrete estimate is an ordinary hit-or-miss on its
        // own canonical key.
        let shard = job_shared.cache.shard_of(&concrete_key);
        if hit {
            job_shared.cache.note_hit(shard);
        } else {
            job_shared.cache.insert(concrete_key, Arc::clone(&body));
            job_shared.cache.note_miss(shard);
        }
        c.served.fetch_add(1, Ordering::Relaxed);
        c.record_latency(t0, shard);
        send(finish_response(id.as_deref(), &body));
    };
    if let Err(e) = shared.pool.try_submit(job) {
        let kind = match e {
            PoolBusy::QueueFull => {
                shared.counters.busy.fetch_add(1, Ordering::Relaxed);
                ErrorKind::Busy
            }
            PoolBusy::ShuttingDown => ErrorKind::ShuttingDown,
        };
        send(finish_response(
            err_id.as_deref(),
            &error_body(kind, &e.to_string()),
        ));
    }
    1
}

/// Admit and drive one batch (see the module-level *Batch execution*
/// notes). Returns the sequence-number span it consumed: `items + 1`.
fn handle_batch(
    id: Option<String>,
    items: Vec<Work>,
    deadline_ms: Option<u64>,
    t0: Instant,
    seq: u64,
    shared: &Arc<Shared>,
    tx: &Sender<(u64, String)>,
) -> u64 {
    let n = items.len();
    let span = n as u64 + 1;
    let send_at = |s: u64, line: String| {
        let _ = tx.send((s, line));
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        let body = error_body(ErrorKind::ShuttingDown, "server is draining");
        for i in 0..n {
            send_at(
                seq + i as u64,
                finish_item_response(id.as_deref(), i, &body),
            );
        }
        send_at(
            seq + n as u64,
            finish_response(id.as_deref(), &batch_summary_body(n as u64, n as u64)),
        );
        return span;
    }
    let c = &shared.counters;
    c.batches.fetch_add(1, Ordering::Relaxed);
    c.batch_items.fetch_add(n as u64, Ordering::Relaxed);
    let run = Arc::new(BatchRun {
        shared: Arc::clone(shared),
        tx: tx.clone(),
        id,
        deadline: deadline_ms.map(Duration::from_millis),
        t0,
        n_items: n as u64,
        base_seq: seq,
        summary_seq: seq + n as u64,
        pending: Mutex::new(VecDeque::new()),
        // The sentinel unit: held by this admission pass, released after
        // the work list is published (see the field docs).
        remaining: AtomicUsize::new(1),
        errors: AtomicU64::new(0),
    });
    // Per-item cache pass: hits are answered inline without a worker
    // slot; keys already in flight (led by another connection or batch)
    // are joined; the rest dedup onto one PendingSim per canonical key.
    // The work list stays local until the pass ends — no runner is
    // draining it, so dedup slot indices stay valid.
    let mut pending: VecDeque<PendingSim> = VecDeque::new();
    let mut dedup: BTreeMap<String, usize> = BTreeMap::new();
    for (i, work) in items.into_iter().enumerate() {
        let cache_key = key::canonical_key(&work);
        let shard = shared.cache.shard_of(&cache_key);
        let is_tune = matches!(work, Work::Tune { .. });
        if let Some(body) = shared.cache.get(&cache_key) {
            shared.cache.note_hit(shard);
            count_tune_cached(c, is_tune, 1);
            c.batch_hits.fetch_add(1, Ordering::Relaxed);
            c.served.fetch_add(1, Ordering::Relaxed);
            c.record_latency(t0, shard);
            run.send_item(i, &body);
            continue;
        }
        if let Some(&slot) = dedup.get(&cache_key) {
            // Intra-batch duplicate of a key this batch will lead.
            pending[slot].items.push(i);
            run.remaining.fetch_add(1, Ordering::AcqRel);
            continue;
        }
        // Claim the owed unit *before* admitting: a joined waiter may
        // fire the instant `admit` returns, and must find its own unit
        // already in the count.
        run.remaining.fetch_add(1, Ordering::AcqRel);
        let w_run = Arc::clone(&run);
        match shared.cache.admit(&cache_key, move |o| {
            w_run.settle_follower(i, shard, is_tune, o)
        }) {
            Admission::Cached(body) => {
                // Raced in since the lock-free get: an ordinary hit. Give
                // the claimed unit back (the sentinel keeps this from
                // emitting the summary early).
                shared.cache.note_hit(shard);
                count_tune_cached(c, is_tune, 1);
                c.batch_hits.fetch_add(1, Ordering::Relaxed);
                c.served.fetch_add(1, Ordering::Relaxed);
                c.record_latency(t0, shard);
                run.send_item(i, &body);
                run.items_done(1);
            }
            Admission::Joined => {}
            Admission::Lead => {
                dedup.insert(cache_key.clone(), pending.len());
                pending.push_back(PendingSim {
                    work,
                    key: cache_key,
                    items: vec![i],
                });
            }
        }
    }
    let owed_sims = pending.len();
    *run.pending.lock().expect("batch pending poisoned") = pending;
    if owed_sims > 0 {
        let runners = shared.batch_chunk.min(owed_sims).max(1);
        let jobs: Vec<Job> = (0..runners)
            .map(|_| {
                let run = Arc::clone(&run);
                Box::new(move || run_batch_step(&run)) as Job
            })
            .collect();
        if let Err(batch_err) = shared.pool.try_submit_batch(jobs) {
            // The whole chunk did not fit; a single runner still makes
            // the batch progress (slower, but admitted).
            let single = Arc::clone(&run);
            if shared
                .pool
                .try_submit(move || run_batch_step(&single))
                .is_err()
            {
                run.refuse_all(batch_err);
            }
        }
    }
    // Release the sentinel; if every item settled inline (all hits, or
    // fast joins already completed), this emits the summary.
    run.items_done(1);
    span
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strict request/response lockstep: each line is answered before the
    /// next is sent, so a repeated request is guaranteed to see the cache
    /// entry its predecessor created.
    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        lines
            .iter()
            .map(|l| {
                writeln!(stream, "{l}").unwrap();
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                resp.trim_end().to_owned()
            })
            .collect()
    }

    #[test]
    fn ping_stats_and_graceful_shutdown() {
        let h = spawn(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = h.local_addr();
        let out = roundtrip(
            addr,
            &[
                r#"{"id":"p","op":"ping"}"#,
                r#"{"op":"conv","layer":{"n":1,"ci":64,"hi":14,"wi":14,"co":64,"hf":3,"wf":3,"pad":1}}"#,
                r#"{"op":"conv","layer":{"n":1,"ci":64,"hi":14,"wi":14,"co":64,"hf":3,"wf":3,"pad":1}}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert!(out[0].contains("\"id\":\"p\""), "{}", out[0]);
        assert!(out[0].contains("\"pong\":true"));
        assert_eq!(out[1], out[2], "cache replay must be byte-identical");
        let stats = match protocol::parse_response(&out[3]).unwrap() {
            protocol::Response::Stats { stats, .. } => stats,
            other => panic!("{other:?}"),
        };
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.hits + stats.misses, stats.requests);
        assert_eq!(stats.hits, 1);
        let final_stats = h.shutdown();
        assert_eq!(final_stats.requests, 2);
    }

    #[test]
    fn malformed_lines_get_typed_errors_not_disconnects() {
        let h = spawn(ServerConfig::default()).unwrap();
        let out = roundtrip(
            h.local_addr(),
            &[
                "{not json",
                r#"{"op":"warp"}"#,
                r#"{"id":"still-alive","op":"ping"}"#,
            ],
        );
        assert!(out[0].contains("\"error\":\"parse\""), "{}", out[0]);
        assert!(out[1].contains("\"error\":\"bad-request\""), "{}", out[1]);
        assert!(out[2].contains("\"pong\":true"), "{}", out[2]);
        let stats = h.shutdown();
        assert_eq!(stats.parse_errors, 2);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn batch_streams_items_in_order_and_dedups() {
        let h = spawn(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut stream = TcpStream::connect(h.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // Items 0 and 2 are the same canonical work: one simulation, the
        // follower answered as a hit.
        writeln!(
            stream,
            "{}",
            concat!(
                r#"{"id":"b","op":"batch","items":["#,
                r#"{"op":"gemm","m":64,"n":64,"k":64},"#,
                r#"{"op":"gemm","m":96,"n":96,"k":96},"#,
                r#"{"op":"gemm","m":64,"n":64,"k":64}]}"#
            )
        )
        .unwrap();
        let mut lines = Vec::new();
        for _ in 0..4 {
            let mut l = String::new();
            reader.read_line(&mut l).unwrap();
            lines.push(l.trim_end().to_owned());
        }
        for (i, line) in lines.iter().take(3).enumerate() {
            assert!(line.contains(&format!("\"item\":{i},")), "{line}");
            assert!(line.contains("\"id\":\"b\""), "{line}");
        }
        assert_eq!(
            lines[0].replace("\"item\":0,", ""),
            lines[2].replace("\"item\":2,", ""),
            "deduped items must be byte-identical modulo the item tag"
        );
        assert!(
            lines[3].contains("\"batch\":{\"items\":3,\"errors\":0}"),
            "{}",
            lines[3]
        );
        let stats = h.shutdown();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_items, 3);
        assert_eq!(stats.batch_misses, 2);
        assert_eq!(stats.batch_hits, 1);
        assert_eq!(stats.batch_errors, 0);
        assert_eq!(stats.hits + stats.misses, stats.requests);
        assert_eq!(stats.requests, 3);
    }

    #[test]
    fn shutdown_op_drains_and_refuses() {
        let h = spawn(ServerConfig::default()).unwrap();
        let addr = h.local_addr();
        let out = roundtrip(
            addr,
            &[
                r#"{"op":"gemm","m":256,"n":256,"k":256}"#,
                r#"{"op":"shutdown"}"#,
                r#"{"op":"gemm","m":512,"n":512,"k":512}"#,
            ],
        );
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        assert!(out[1].contains("\"shutdown\":true"), "{}", out[1]);
        assert!(out[2].contains("shutting-down"), "{}", out[2]);
        h.wait_shutdown_requested();
        h.shutdown();
    }
}
