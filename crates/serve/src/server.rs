//! The TCP server: accept loop, per-connection reader/writer threads, the
//! shared report cache, and the worker-pool dispatch path.
//!
//! # Threading model
//!
//! * One acceptor thread polls a non-blocking listener so shutdown never
//!   hangs in `accept`.
//! * Each connection gets a **reader** thread (parses request lines,
//!   serves cache hits inline, dispatches misses to the shared
//!   [`WorkerPool`]) and a **writer** thread (reassembles responses into
//!   request order by sequence number, so pipelined clients always read
//!   answers in the order they asked).
//! * The pool is the only place simulations run; its bounded queue is the
//!   overload valve — a full queue turns into an immediate `busy` error,
//!   never a blocked reader.
//!
//! # Counter discipline
//!
//! `hits` is counted at the reader's cache lookup; `misses` is counted on
//! a worker *after* the deadline check passes, right when a simulation
//! actually runs. Rejections (busy / deadline / parse / bad-request /
//! shutting-down) increment their own counters and are excluded from
//! `requests`, so `hits + misses == requests` holds exactly at any
//! quiescent point — the `stats` RPC invariant the determinism test pins.

use std::collections::BinaryHeap;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind as IoErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iconv_par::{PoolBusy, WorkerPool};
use iconv_trace::TraceSink;

use crate::cache::LruCache;
use crate::engine;
use crate::key;
use crate::protocol::{
    self, error_body, finish_response, pong_body, shutdown_body, stats_body, ErrorKind, Request,
    StatsSnapshot,
};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads running simulations.
    pub workers: usize,
    /// Bounded job-queue capacity (overload backpressure threshold).
    pub queue_capacity: usize,
    /// Report-cache capacity in entries.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: iconv_par::default_jobs(),
            queue_capacity: 1024,
            cache_capacity: 16 * 1024,
        }
    }
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    busy: AtomicU64,
    deadline: AtomicU64,
    parse_errors: AtomicU64,
    latency_us_total: AtomicU64,
    latency_us_max: AtomicU64,
}

impl Counters {
    fn record_latency(&self, since: Instant) {
        let us = since.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.latency_us_total.fetch_add(us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(us, Ordering::Relaxed);
    }
}

struct Shared {
    counters: Counters,
    cache: Mutex<LruCache>,
    pool: Mutex<WorkerPool>,
    workers: usize,
    shutting_down: AtomicBool,
    /// Set by the `shutdown` op; `wait_shutdown_requested` blocks on it.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    /// Read-half clones of live connections, shut down to unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let mut req = self
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        *req = true;
        drop(req);
        self.shutdown_cv.notify_all();
    }

    fn snapshot(&self) -> StatsSnapshot {
        let c = &self.counters;
        let (cache_entries, cache_capacity, evictions) = {
            let cache = self.cache.lock().expect("cache poisoned");
            (
                cache.len() as u64,
                cache.capacity() as u64,
                cache.evictions(),
            )
        };
        let (queue_depth, in_flight) = {
            let pool = self.pool.lock().expect("pool poisoned");
            (pool.queue_depth() as u64, pool.in_flight() as u64)
        };
        StatsSnapshot {
            requests: c.served.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions,
            cache_entries,
            cache_capacity,
            queue_depth,
            in_flight,
            busy_rejections: c.busy.load(Ordering::Relaxed),
            deadline_expired: c.deadline.load(Ordering::Relaxed),
            parse_errors: c.parse_errors.load(Ordering::Relaxed),
            latency_us_total: c.latency_us_total.load(Ordering::Relaxed),
            latency_us_max: c.latency_us_max.load(Ordering::Relaxed),
            workers: self.workers as u64,
        }
    }

    /// Mirror the counters into an `iconv-trace` sink (the `stats` RPC is
    /// the live view; this writes the same numbers as trace counters for
    /// offline tooling).
    fn emit_trace(&self, sink: &mut dyn TraceSink) {
        let s = self.snapshot();
        sink.counter("serve.requests", s.requests);
        sink.counter("serve.cache_hits", s.hits);
        sink.counter("serve.cache_misses", s.misses);
        sink.counter("serve.cache_evictions", s.evictions);
        sink.counter("serve.queue_depth", s.queue_depth);
        sink.counter("serve.busy_rejections", s.busy_rejections);
        sink.counter("serve.deadline_expired", s.deadline_expired);
        sink.counter("serve.parse_errors", s.parse_errors);
        sink.counter("serve.latency_us_total", s.latency_us_total);
        sink.counter("serve.latency_us_max", s.latency_us_max);
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the process-local threads abruptly;
/// call `shutdown` for the graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot (same numbers as the `stats` RPC).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Emit the counters into an `iconv-trace` sink.
    pub fn emit_trace(&self, sink: &mut dyn TraceSink) {
        self.shared.emit_trace(sink);
    }

    /// Block until some client sends the `shutdown` op (or
    /// [`ServerHandle::request_shutdown`] is called locally).
    pub fn wait_shutdown_requested(&self) {
        let mut req = self
            .shared
            .shutdown_requested
            .lock()
            .expect("flag poisoned");
        while !*req {
            req = self.shared.shutdown_cv.wait(req).expect("flag poisoned");
        }
    }

    /// Begin refusing new work, as if a `shutdown` op had arrived.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Graceful teardown: stop accepting connections, drain queued and
    /// in-flight simulations, deliver their responses, then close
    /// connections and join every thread.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.request_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Drain the pool: queued jobs run to completion and push their
        // responses into the writers before this returns.
        self.shared.pool.lock().expect("pool poisoned").shutdown();
        // Unblock readers parked in read(); keeps the write half intact so
        // writers can still flush drained responses.
        for conn in self.shared.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let threads: Vec<_> = {
            let mut guard = self.shared.conn_threads.lock().expect("threads poisoned");
            guard.drain(..).collect()
        };
        for h in threads {
            let _ = h.join();
        }
        self.shared.snapshot()
    }
}

/// Spawn a server on `cfg.addr`.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        counters: Counters::default(),
        cache: Mutex::new(LruCache::new(cfg.cache_capacity.max(1))),
        pool: Mutex::new(WorkerPool::new(workers, cfg.queue_capacity.max(1))),
        workers,
        shutting_down: AtomicBool::new(false),
        shutdown_requested: Mutex::new(false),
        shutdown_cv: Condvar::new(),
        conns: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("iconv-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor")
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(e) = start_connection(stream, shared) {
                    eprintln!("iconv-serve: failed to start connection: {e}");
                }
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn start_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let read_half = stream.try_clone()?;
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .push(stream.try_clone()?);
    let (tx, rx) = channel::<(u64, String)>();
    let writer = std::thread::Builder::new()
        .name("iconv-serve-write".to_owned())
        .spawn(move || writer_loop(stream, &rx))?;
    let reader = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("iconv-serve-read".to_owned())
            .spawn(move || reader_loop(read_half, &shared, &tx))?
    };
    let mut threads = shared.conn_threads.lock().expect("threads poisoned");
    threads.push(writer);
    threads.push(reader);
    Ok(())
}

/// Reassemble `(seq, line)` messages into ascending-`seq` order and write
/// them out, flushing whenever the channel momentarily runs dry.
fn writer_loop(stream: TcpStream, rx: &std::sync::mpsc::Receiver<(u64, String)>) {
    let mut out = BufWriter::new(stream);
    let mut next_seq = 0u64;
    let mut held: BinaryHeap<std::cmp::Reverse<(u64, String)>> = BinaryHeap::new();
    let write = |out: &mut BufWriter<TcpStream>, line: &str| -> bool {
        out.write_all(line.as_bytes()).is_ok() && out.write_all(b"\n").is_ok()
    };
    'recv: while let Ok(msg) = rx.recv() {
        held.push(std::cmp::Reverse(msg));
        while let Some(std::cmp::Reverse((seq, _))) = held.peek() {
            if *seq != next_seq {
                break;
            }
            let std::cmp::Reverse((_, line)) = held.pop().expect("peeked");
            if !write(&mut out, &line) {
                break 'recv;
            }
            next_seq += 1;
        }
        // Nothing immediately pending: push what we have to the client.
        let _ = out.flush();
    }
    // Channel closed (reader and all jobs done): drain any stragglers.
    while let Some(std::cmp::Reverse((_, line))) = held.pop() {
        if !write(&mut out, &line) {
            break;
        }
    }
    let _ = out.flush();
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>, tx: &Sender<(u64, String)>) {
    let reader = BufReader::new(stream);
    let mut seq = 0u64;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let this_seq = seq;
        seq += 1;
        handle_line(&line, this_seq, shared, tx);
    }
}

fn handle_line(line: &str, seq: u64, shared: &Arc<Shared>, tx: &Sender<(u64, String)>) {
    let t0 = Instant::now();
    let send = |line: String| {
        let _ = tx.send((seq, line));
    };
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(e) => {
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            send(finish_response(
                e.id.as_deref(),
                &error_body(e.kind, &e.detail),
            ));
            return;
        }
    };
    match req {
        Request::Ping { id } => send(finish_response(id.as_deref(), &pong_body())),
        Request::Stats { id } => {
            let body = stats_body(&shared.snapshot());
            send(finish_response(id.as_deref(), &body));
        }
        Request::Shutdown { id } => {
            send(finish_response(id.as_deref(), &shutdown_body()));
            shared.request_shutdown();
        }
        Request::Estimate(req) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                send(finish_response(
                    req.id.as_deref(),
                    &error_body(ErrorKind::ShuttingDown, "server is draining"),
                ));
                return;
            }
            let cache_key = key::canonical_key(&req.work);
            // Hit fast path: served inline by the reader, deadline ignored
            // (a hit costs microseconds).
            let cached = shared.cache.lock().expect("cache poisoned").get(&cache_key);
            if let Some(body) = cached {
                shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                shared.counters.served.fetch_add(1, Ordering::Relaxed);
                shared.counters.record_latency(t0);
                send(finish_response(req.id.as_deref(), &body));
                return;
            }
            let err_id = req.id.clone();
            let job_shared = Arc::clone(shared);
            let job_tx = tx.clone();
            let job = move || {
                let deadline = req.deadline_ms.map(Duration::from_millis);
                if let Some(d) = deadline {
                    if t0.elapsed() > d {
                        job_shared.counters.deadline.fetch_add(1, Ordering::Relaxed);
                        let _ = job_tx.send((
                            seq,
                            finish_response(
                                req.id.as_deref(),
                                &error_body(ErrorKind::Deadline, "deadline expired in queue"),
                            ),
                        ));
                        return;
                    }
                }
                let body = engine::evaluate(&req.work);
                job_shared
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(cache_key, body.clone());
                job_shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                job_shared.counters.served.fetch_add(1, Ordering::Relaxed);
                job_shared.counters.record_latency(t0);
                let _ = job_tx.send((seq, finish_response(req.id.as_deref(), &body)));
            };
            let submitted = shared.pool.lock().expect("pool poisoned").try_submit(job);
            if let Err(e) = submitted {
                let kind = match e {
                    PoolBusy::QueueFull => {
                        shared.counters.busy.fetch_add(1, Ordering::Relaxed);
                        ErrorKind::Busy
                    }
                    PoolBusy::ShuttingDown => ErrorKind::ShuttingDown,
                };
                send(finish_response(
                    err_id.as_deref(),
                    &error_body(kind, &e.to_string()),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strict request/response lockstep: each line is answered before the
    /// next is sent, so a repeated request is guaranteed to see the cache
    /// entry its predecessor created.
    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        lines
            .iter()
            .map(|l| {
                writeln!(stream, "{l}").unwrap();
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                resp.trim_end().to_owned()
            })
            .collect()
    }

    #[test]
    fn ping_stats_and_graceful_shutdown() {
        let h = spawn(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = h.local_addr();
        let out = roundtrip(
            addr,
            &[
                r#"{"id":"p","op":"ping"}"#,
                r#"{"op":"conv","layer":{"n":1,"ci":64,"hi":14,"wi":14,"co":64,"hf":3,"wf":3,"pad":1}}"#,
                r#"{"op":"conv","layer":{"n":1,"ci":64,"hi":14,"wi":14,"co":64,"hf":3,"wf":3,"pad":1}}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert!(out[0].contains("\"id\":\"p\""), "{}", out[0]);
        assert!(out[0].contains("\"pong\":true"));
        assert_eq!(out[1], out[2], "cache replay must be byte-identical");
        let stats = match protocol::parse_response(&out[3]).unwrap() {
            protocol::Response::Stats { stats, .. } => stats,
            other => panic!("{other:?}"),
        };
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.hits + stats.misses, stats.requests);
        assert_eq!(stats.hits, 1);
        let final_stats = h.shutdown();
        assert_eq!(final_stats.requests, 2);
    }

    #[test]
    fn malformed_lines_get_typed_errors_not_disconnects() {
        let h = spawn(ServerConfig::default()).unwrap();
        let out = roundtrip(
            h.local_addr(),
            &[
                "{not json",
                r#"{"op":"warp"}"#,
                r#"{"id":"still-alive","op":"ping"}"#,
            ],
        );
        assert!(out[0].contains("\"error\":\"parse\""), "{}", out[0]);
        assert!(out[1].contains("\"error\":\"bad-request\""), "{}", out[1]);
        assert!(out[2].contains("\"pong\":true"), "{}", out[2]);
        let stats = h.shutdown();
        assert_eq!(stats.parse_errors, 2);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn shutdown_op_drains_and_refuses() {
        let h = spawn(ServerConfig::default()).unwrap();
        let addr = h.local_addr();
        let out = roundtrip(
            addr,
            &[
                r#"{"op":"gemm","m":256,"n":256,"k":256}"#,
                r#"{"op":"shutdown"}"#,
                r#"{"op":"gemm","m":512,"n":512,"k":512}"#,
            ],
        );
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        assert!(out[1].contains("\"shutdown\":true"), "{}", out[1]);
        assert!(out[2].contains("shutting-down"), "{}", out[2]);
        h.wait_shutdown_requested();
        h.shutdown();
    }
}
