//! Command-line parsing for `loadgen`, extracted from the binary so the
//! flag grammar is unit-testable: mode conflicts (closed-loop flags vs.
//! `--open-loop`), SLO duration strings, and rejection of zero/negative
//! rates are all contracts with tests, not `main()` folklore.

use std::time::Duration;

use crate::client::DEFAULT_CONNECT_TIMEOUT;

/// Flag summary printed with every parse error.
pub const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--concurrency N] [--workers N] \
     [--models all|small] [--pass forward|wgrad|dgrad|transpose|indirect] \
     [--connect-timeout SECS] [--out PATH] [--shutdown] \
     {closed: [--window N] [--passes N] [--batch N] | \
     open: --open-loop [--soak] [--rate RPS] [--requests N] [--slo DUR] [--zipf-s S] \
     [--seed N] [--batch-size N] [--knee] [--rate-min RPS] [--rate-max RPS]}";

/// Scheduled entries in the `--soak` profile: a sustained million-request
/// open-loop run, sized so the capacity report measures steady-state
/// behavior (cache churn, tune-store warm-up, histogram tails) rather
/// than a few seconds of transient.
pub const SOAK_REQUESTS: usize = 1_000_000;

/// Offered rate for the `--soak` profile, requests/second. Chosen to sit
/// well inside the measured knee of every in-process topology (the
/// 3-backend routed fleet is the binding one), so the soak exercises
/// sustained throughput without tipping into overload collapse.
pub const SOAK_RATE_RPS: u64 = 5_000;

/// Parsed `loadgen` invocation: target/pool settings plus one of the two
/// generator modes.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenArgs {
    /// External server address; `None` boots in-process topologies.
    pub addr: Option<String>,
    /// Connection-pool size (closed: lockstep loops; open: sockets).
    pub concurrency: usize,
    /// Worker threads for in-process servers.
    pub workers: usize,
    /// Restrict the workload table to the small models.
    pub small: bool,
    /// Which convolution-pass leg the workload table estimates: `forward`
    /// (the historical four-estimator table), a backward/transposed pass,
    /// or the `indirect` lowering of the forward pass. Matches the CI
    /// pass-matrix leg names.
    pub pass: String,
    /// Budget for the initial connect race against a booting server.
    pub connect_timeout: Duration,
    /// Report path (defaults per mode).
    pub out: String,
    /// Send `shutdown` to the target server when done.
    pub shutdown: bool,
    /// Which generator runs.
    pub mode: Mode,
}

/// The generator mode.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// Lockstep request/response loops (the original `loadgen`).
    Closed(ClosedArgs),
    /// Virtual-clock arrival schedule, coordinated-omission-safe.
    Open(OpenArgs),
}

/// Closed-loop knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedArgs {
    /// Pipelining window per connection.
    pub window: usize,
    /// Workload-table passes (pass 1 cold, later passes warm).
    pub passes: usize,
    /// Items per `batch` request; 0 = one request line per estimate.
    pub batch: usize,
}

/// Open-loop knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenArgs {
    /// Offered arrival rate for the soak, requests/second.
    pub rate_rps: u64,
    /// Scheduled entries per soak.
    pub requests: usize,
    /// p99 SLO the knee search bisects against, microseconds.
    pub slo_p99_us: u64,
    /// Zipf exponent for key popularity.
    pub zipf_s: f64,
    /// Schedule seed.
    pub seed: u64,
    /// Items per batch-framed entry.
    pub batch_size: usize,
    /// Whether the `--soak` profile selected the defaults.
    pub soak: bool,
    /// Run the knee search after the soak.
    pub knee: bool,
    /// Knee-search bracket floor (default `rate/8`, min 1).
    pub rate_min: u64,
    /// Knee-search bracket ceiling (default `rate*8`).
    pub rate_max: u64,
}

/// Parse a `--slo` duration string into microseconds. Accepts a positive
/// integer with a required unit suffix: `us`, `ms`, or `s`.
pub fn parse_slo(s: &str) -> Result<u64, String> {
    let (digits, scale) = if let Some(d) = s.strip_suffix("us") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        return Err(format!(
            "--slo needs a unit suffix us|ms|s (got {s:?}); {USAGE}"
        ));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("--slo needs a positive integer magnitude (got {s:?}); {USAGE}"))?;
    if n == 0 {
        return Err(format!("--slo must be positive (got {s:?}); {USAGE}"));
    }
    n.checked_mul(scale)
        .ok_or_else(|| format!("--slo overflows microseconds (got {s:?}); {USAGE}"))
}

fn positive_u64(name: &str, v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{name} needs a positive integer (got {v:?}); {USAGE}"))
}

fn positive_usize(name: &str, v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{name} needs a positive integer (got {v:?}); {USAGE}"))
}

/// Parse a `loadgen` argument list (without the program name).
///
/// Mode selection is explicit: `--open-loop` switches to the open-loop
/// generator. Open-loop flags without the switch are an error (silently
/// ignoring them would misreport what ran), and closed-loop flags
/// combined with the switch are a conflict for the same reason.
pub fn parse_loadgen_args(args: impl IntoIterator<Item = String>) -> Result<LoadgenArgs, String> {
    let mut addr = None;
    let mut concurrency = 8usize;
    let mut workers = iconv_par::default_jobs();
    let mut small = false;
    let mut pass = "forward".to_owned();
    let mut connect_timeout = DEFAULT_CONNECT_TIMEOUT;
    let mut out: Option<String> = None;
    let mut shutdown = false;

    let mut open_loop = false;
    // Closed-only flags, recorded as (flag-name, value) so conflicts name
    // the offender.
    let mut window: Option<usize> = None;
    let mut passes: Option<usize> = None;
    let mut batch: Option<usize> = None;
    // Open-only flags.
    let mut rate: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut slo: Option<u64> = None;
    let mut zipf_s: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut batch_size: Option<usize> = None;
    let mut soak = false;
    let mut knee = false;
    let mut rate_min: Option<u64> = None;
    let mut rate_max: Option<u64> = None;
    let mut open_flags_seen: Vec<&'static str> = Vec::new();

    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value; {USAGE}"))
        };
        match a.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--concurrency" => {
                concurrency = positive_usize("--concurrency", &value("--concurrency")?)?
            }
            "--workers" => workers = positive_usize("--workers", &value("--workers")?)?,
            "--connect-timeout" => {
                connect_timeout = Duration::from_secs(positive_u64(
                    "--connect-timeout",
                    &value("--connect-timeout")?,
                )?);
            }
            "--out" => out = Some(value("--out")?),
            "--shutdown" => shutdown = true,
            "--models" => {
                small = match value("--models")?.as_str() {
                    "all" => false,
                    "small" => true,
                    other => {
                        return Err(format!(
                            "--models must be all|small (got {other:?}); {USAGE}"
                        ))
                    }
                }
            }
            "--pass" => {
                let v = value("--pass")?;
                match v.as_str() {
                    "forward" | "wgrad" | "dgrad" | "transpose" | "indirect" => pass = v,
                    other => {
                        return Err(format!(
                            "--pass must be forward|wgrad|dgrad|transpose|indirect \
                             (got {other:?}); {USAGE}"
                        ))
                    }
                }
            }
            // Closed-loop flags.
            "--window" => window = Some(positive_usize("--window", &value("--window")?)?),
            "--passes" => passes = Some(positive_usize("--passes", &value("--passes")?)?),
            "--batch" => batch = Some(positive_usize("--batch", &value("--batch")?)?),
            // Open-loop flags.
            "--open-loop" => open_loop = true,
            "--rate" => {
                rate = Some(positive_u64("--rate", &value("--rate")?)?);
                open_flags_seen.push("--rate");
            }
            "--requests" => {
                requests = Some(positive_usize("--requests", &value("--requests")?)?);
                open_flags_seen.push("--requests");
            }
            "--slo" => {
                slo = Some(parse_slo(&value("--slo")?)?);
                open_flags_seen.push("--slo");
            }
            "--zipf-s" => {
                let v = value("--zipf-s")?;
                let s: f64 = v
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| {
                        format!("--zipf-s needs a positive finite number (got {v:?}); {USAGE}")
                    })?;
                zipf_s = Some(s);
                open_flags_seen.push("--zipf-s");
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = Some(v.parse::<u64>().map_err(|_| {
                    format!("--seed needs an unsigned integer (got {v:?}); {USAGE}")
                })?);
                open_flags_seen.push("--seed");
            }
            "--batch-size" => {
                batch_size = Some(positive_usize("--batch-size", &value("--batch-size")?)?);
                open_flags_seen.push("--batch-size");
            }
            "--soak" => {
                soak = true;
                open_flags_seen.push("--soak");
            }
            "--knee" => {
                knee = true;
                open_flags_seen.push("--knee");
            }
            "--rate-min" => {
                rate_min = Some(positive_u64("--rate-min", &value("--rate-min")?)?);
                open_flags_seen.push("--rate-min");
            }
            "--rate-max" => {
                rate_max = Some(positive_u64("--rate-max", &value("--rate-max")?)?);
                open_flags_seen.push("--rate-max");
            }
            other => return Err(format!("unknown argument {other:?}; {USAGE}")),
        }
    }

    if open_loop {
        let mut closed_seen = Vec::new();
        if window.is_some() {
            closed_seen.push("--window");
        }
        if passes.is_some() {
            closed_seen.push("--passes");
        }
        if batch.is_some() {
            closed_seen.push("--batch");
        }
        if !closed_seen.is_empty() {
            return Err(format!(
                "closed-loop flag(s) {} conflict with --open-loop; {USAGE}",
                closed_seen.join(", ")
            ));
        }
        // `--soak` is a profile, not a mode: it only moves the defaults
        // (a million scheduled entries at a sustainable rate); explicit
        // `--rate` / `--requests` still win.
        let rate_rps = rate.unwrap_or(if soak { SOAK_RATE_RPS } else { 300 });
        let rate_min = rate_min.unwrap_or_else(|| (rate_rps / 8).max(1));
        let rate_max = rate_max.unwrap_or_else(|| rate_rps.saturating_mul(8));
        if rate_min > rate_max {
            return Err(format!(
                "--rate-min {rate_min} exceeds --rate-max {rate_max}; {USAGE}"
            ));
        }
        Ok(LoadgenArgs {
            addr,
            concurrency,
            workers,
            small,
            pass: pass.clone(),
            connect_timeout,
            out: out.unwrap_or_else(|| "BENCH_capacity.json".to_owned()),
            shutdown,
            mode: Mode::Open(OpenArgs {
                rate_rps,
                requests: requests.unwrap_or(if soak { SOAK_REQUESTS } else { 3000 }),
                slo_p99_us: slo.unwrap_or(50_000),
                zipf_s: zipf_s.unwrap_or(1.1),
                seed: seed.unwrap_or(42),
                batch_size: batch_size.unwrap_or(8),
                soak,
                knee,
                rate_min,
                rate_max,
            }),
        })
    } else {
        if !open_flags_seen.is_empty() {
            return Err(format!(
                "{} require(s) --open-loop; {USAGE}",
                open_flags_seen.join(", ")
            ));
        }
        Ok(LoadgenArgs {
            addr,
            concurrency,
            workers,
            small,
            pass,
            connect_timeout,
            out: out.unwrap_or_else(|| "BENCH_serve.json".to_owned()),
            shutdown,
            mode: Mode::Closed(ClosedArgs {
                window: window.unwrap_or(32),
                passes: passes.unwrap_or(2),
                batch: batch.unwrap_or(0),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<LoadgenArgs, String> {
        parse_loadgen_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_are_closed_loop() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.out, "BENCH_serve.json");
        match a.mode {
            Mode::Closed(c) => {
                assert_eq!(c.window, 32);
                assert_eq!(c.passes, 2);
                assert_eq!(c.batch, 0);
            }
            Mode::Open(_) => panic!("default mode must be closed"),
        }
    }

    #[test]
    fn pass_flag_selects_a_leg_and_rejects_strangers() {
        assert_eq!(parse(&[]).unwrap().pass, "forward");
        for leg in ["forward", "wgrad", "dgrad", "transpose", "indirect"] {
            assert_eq!(parse(&["--pass", leg]).unwrap().pass, leg);
        }
        let e = parse(&["--pass", "sideways"]).unwrap_err();
        assert!(e.contains("--pass"), "{e}");
    }

    #[test]
    fn open_loop_defaults_and_bracket_derivation() {
        let a = parse(&["--open-loop"]).unwrap();
        assert_eq!(a.out, "BENCH_capacity.json");
        match a.mode {
            Mode::Open(o) => {
                assert_eq!(o.rate_rps, 300);
                assert_eq!(o.requests, 3000);
                assert_eq!(o.slo_p99_us, 50_000);
                assert_eq!(o.seed, 42);
                assert_eq!(o.batch_size, 8);
                assert!(!o.knee);
                assert_eq!(o.rate_min, 37); // 300/8
                assert_eq!(o.rate_max, 2400);
            }
            Mode::Closed(_) => panic!("--open-loop must select open mode"),
        }
    }

    #[test]
    fn soak_profile_schedules_a_sustained_million_requests() {
        let a = parse(&["--open-loop", "--soak"]).unwrap();
        match a.mode {
            Mode::Open(o) => {
                assert!(o.soak);
                assert_eq!(o.requests, SOAK_REQUESTS);
                assert!(o.requests >= 1_000_000, "soak must schedule >= 1e6");
                assert_eq!(o.rate_rps, SOAK_RATE_RPS);
                // The knee bracket derives from the soak rate.
                assert_eq!(o.rate_min, SOAK_RATE_RPS / 8);
                assert_eq!(o.rate_max, SOAK_RATE_RPS * 8);
            }
            Mode::Closed(_) => panic!("--soak must stay in open mode"),
        }
    }

    #[test]
    fn explicit_flags_beat_the_soak_profile() {
        let a = parse(&["--open-loop", "--soak", "--rate", "700", "--requests", "99"]).unwrap();
        match a.mode {
            Mode::Open(o) => {
                assert!(o.soak);
                assert_eq!(o.rate_rps, 700);
                assert_eq!(o.requests, 99);
            }
            Mode::Closed(_) => panic!("--soak must stay in open mode"),
        }
    }

    #[test]
    fn soak_without_the_switch_is_an_error() {
        let err = parse(&["--soak"]).unwrap_err();
        assert!(err.contains("require(s) --open-loop"), "{err}");
    }

    #[test]
    fn explicit_out_beats_the_mode_default() {
        let a = parse(&["--open-loop", "--out", "custom.json"]).unwrap();
        assert_eq!(a.out, "custom.json");
    }

    #[test]
    fn rejects_zero_rate() {
        let err = parse(&["--open-loop", "--rate", "0"]).unwrap_err();
        assert!(err.contains("--rate needs a positive integer"), "{err}");
    }

    #[test]
    fn rejects_negative_rate() {
        let err = parse(&["--open-loop", "--rate", "-5"]).unwrap_err();
        assert!(err.contains("--rate needs a positive integer"), "{err}");
    }

    #[test]
    fn rejects_malformed_slo_strings() {
        for bad in ["250", "ms", "0ms", "-3ms", "1.5s", "fastplease", ""] {
            let err = parse(&["--open-loop", "--slo", bad]).unwrap_err();
            assert!(
                err.contains("--slo"),
                "SLO {bad:?} gave unrelated error: {err}"
            );
        }
    }

    #[test]
    fn parses_slo_units() {
        assert_eq!(parse_slo("150us").unwrap(), 150);
        assert_eq!(parse_slo("250ms").unwrap(), 250_000);
        assert_eq!(parse_slo("1s").unwrap(), 1_000_000);
    }

    #[test]
    fn open_flags_without_the_switch_are_errors() {
        for flags in [
            &["--rate", "500"][..],
            &["--slo", "10ms"][..],
            &["--knee"][..],
        ] {
            let err = parse(flags).unwrap_err();
            assert!(err.contains("require(s) --open-loop"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn closed_flags_with_the_switch_are_conflicts() {
        let err = parse(&["--open-loop", "--window", "16"]).unwrap_err();
        assert!(err.contains("conflict with --open-loop"), "{err}");
        assert!(err.contains("--window"), "{err}");
        let err = parse(&["--passes", "3", "--open-loop", "--batch", "4"]).unwrap_err();
        assert!(err.contains("--passes"), "{err}");
        assert!(err.contains("--batch"), "{err}");
    }

    #[test]
    fn rejects_inverted_knee_bracket() {
        let err = parse(&["--open-loop", "--rate-min", "900", "--rate-max", "100"]).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn rejects_zero_zipf_and_garbage_seed() {
        assert!(parse(&["--open-loop", "--zipf-s", "0"]).is_err());
        assert!(parse(&["--open-loop", "--zipf-s", "nan"]).is_err());
        assert!(parse(&["--open-loop", "--seed", "0x2a"]).is_err());
        // Seed zero is fine — it is a seed, not a count.
        assert!(parse(&["--open-loop", "--seed", "0"]).is_ok());
    }

    #[test]
    fn missing_value_is_reported() {
        let err = parse(&["--rate"]).unwrap_err();
        assert!(err.contains("--rate requires a value"), "{err}");
    }
}
