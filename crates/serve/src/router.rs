//! The cache-affinity router: a front-end that consistent-hashes canonical
//! keys across a fleet of `served` backends.
//!
//! One `served` process striped sixteen ways still tops out at one
//! machine's worth of cache; the router scales the *fleet* the same way
//! the [`crate::cache::StripedCache`] scales the locks — by hashing the
//! canonical key ([`iconv_api::stable_hash64`], the same function the
//! shards use) onto a [`HashRing`] of backends. Every request for a key
//! lands on the same backend, so each backend's cache stays hot for its
//! own key range, and losing a backend moves only that backend's keys
//! (the consistent-hashing property).
//!
//! # Forwarding model
//!
//! Each client connection gets one router thread working in lockstep:
//! read a request line, forward, relay the response, repeat. Single
//! estimates are forwarded **verbatim** — the backend sees the client's
//! exact bytes (id included), so the relayed response is byte-identical
//! to talking to that backend directly. A `batch` is scattered: items
//! are grouped by owning backend, sub-batches are sent id-free, and the
//! item lines are rebuilt with the client's id and original item indices
//! — the same rendering `served` itself uses, so the assembled stream is
//! byte-identical to a single server's. `stats` merges every backend's
//! snapshot ([`StatsSnapshot::merge`]); `shards` concatenates the fleet's
//! per-shard counters with renumbered shard ids; `ping` is answered
//! locally; `shutdown` is broadcast and then honored by the router
//! itself.
//!
//! # Failure containment
//!
//! Each backend has a [`Breaker`] — a circuit breaker whose open
//! intervals follow the [`RetryPolicy`] backoff schedule (the same capped
//! exponential + deterministic jitter the [`crate::client::RetryClient`]
//! sleeps). `threshold` consecutive failures open the circuit; after the
//! backoff elapses one probe is allowed through (half-open), and its
//! outcome closes or re-opens the breaker with a longer interval. A
//! request whose primary is open walks the key's
//! [`HashRing::failover_order`] — estimates re-issue safely because they
//! are idempotent under canonical keys. Only when *no* backend accepts
//! the work does the client see an error (`busy`, detail "no healthy
//! backend" — retryable, exactly like queue overload). A background
//! health thread pings each backend so breakers recover without client
//! traffic.
//!
//! # Fault seams
//!
//! When [`RouterConfig::faults`] is armed, the router↔backend hop
//! consults two sites: `route-send` (the forward write fails as if the
//! backend dropped) and `route-recv` (the relay read fails likewise).
//! Both feed the same failover machinery as real socket errors, so chaos
//! runs exercise the breaker paths deterministically.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind as IoErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iconv_api::HashRing;
use iconv_faults::{FaultPoint, FaultSite};

use crate::client::{Client, RetryPolicy};
use crate::key;
use crate::protocol::{
    self, batch_summary_body, encode_batch, encode_simple, error_body, finish_item_response,
    finish_response, pong_body, shards_body, shutdown_body, stats_body, ErrorKind, Request,
    Response, ShardStat, StatsSnapshot, Work,
};

/// Default virtual nodes per backend on the ring.
pub const DEFAULT_VNODES: usize = 64;

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub listen_addr: String,
    /// Backend `served` addresses, in ring order. Must be non-empty.
    pub backends: Vec<String>,
    /// Virtual nodes per backend (`0` means [`DEFAULT_VNODES`]).
    pub vnodes: usize,
    /// Consecutive failures that open a backend's circuit breaker.
    pub breaker_threshold: u32,
    /// Backoff schedule for open intervals (attempts field unused).
    pub breaker_backoff: RetryPolicy,
    /// Health-probe period.
    pub health_interval: Duration,
    /// Connect-retry budget per backend exchange.
    pub connect_timeout: Duration,
    /// Armed fault plan consulted at the router↔backend seams.
    pub faults: Option<Arc<dyn FaultPoint>>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            listen_addr: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            vnodes: 0,
            breaker_threshold: 3,
            breaker_backoff: RetryPolicy::default(),
            health_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_secs(1),
            faults: None,
        }
    }
}

/// Circuit-breaker state, exposed for stats and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the backoff elapses.
    Open,
    /// Backoff elapsed: one probe in flight decides the next state.
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    /// Consecutive failures while closed.
    fails: u32,
    /// Consecutive open periods (the backoff exponent).
    attempt: u32,
    /// While open: the earliest instant a probe may pass.
    until: Instant,
}

/// A per-backend circuit breaker. Open intervals follow the
/// [`RetryPolicy`] backoff schedule, salted by the backend index so a
/// fleet of breakers doesn't probe in lockstep.
pub struct Breaker {
    threshold: u32,
    policy: RetryPolicy,
    salt: u64,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    /// A closed breaker that opens after `threshold` consecutive failures.
    #[must_use]
    pub fn new(threshold: u32, policy: RetryPolicy, salt: u64) -> Self {
        Self {
            threshold: threshold.max(1),
            policy,
            salt,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                fails: 0,
                attempt: 0,
                until: Instant::now(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// May a request pass? An open breaker whose backoff has elapsed
    /// transitions to half-open and lets the caller through as the probe.
    pub fn allow(&self) -> bool {
        let mut b = self.lock();
        match b.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if Instant::now() >= b.until {
                    b.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report a successful exchange: the breaker closes fully.
    pub fn on_success(&self) {
        let mut b = self.lock();
        b.state = BreakerState::Closed;
        b.fails = 0;
        b.attempt = 0;
    }

    /// Report a failed exchange: closed breakers count toward the
    /// threshold; a failed half-open probe re-opens with a longer
    /// backoff.
    pub fn on_failure(&self) {
        let mut b = self.lock();
        match b.state {
            BreakerState::Closed => {
                b.fails += 1;
                if b.fails >= self.threshold {
                    Self::open(&mut b, &self.policy, self.salt);
                }
            }
            BreakerState::HalfOpen => Self::open(&mut b, &self.policy, self.salt),
            BreakerState::Open => {}
        }
    }

    fn open(b: &mut BreakerInner, policy: &RetryPolicy, salt: u64) {
        b.state = BreakerState::Open;
        b.until = Instant::now() + policy.backoff(b.attempt, salt);
        b.attempt = b.attempt.saturating_add(1);
        b.fails = 0;
    }

    /// Current state (open breakers are reported open even when their
    /// backoff has elapsed — only a passing request flips them).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }
}

/// Router-local counters (backend traffic is accounted by the backends
/// themselves and surfaced through the merged `stats` op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Request lines forwarded to a backend (sub-batches count once).
    pub forwarded: u64,
    /// Exchanges answered by a non-primary backend.
    pub failovers: u64,
    /// Requests (or batch items) refused because no backend was healthy.
    pub unrouted: u64,
    /// Client lines that failed to parse.
    pub parse_errors: u64,
}

#[derive(Default)]
struct Counters {
    forwarded: AtomicU64,
    failovers: AtomicU64,
    unrouted: AtomicU64,
    parse_errors: AtomicU64,
}

struct RouterShared {
    ring: HashRing,
    backends: Vec<String>,
    breakers: Vec<Breaker>,
    counters: Counters,
    connect_timeout: Duration,
    faults: Option<Arc<dyn FaultPoint>>,
    shutting_down: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl RouterShared {
    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let mut req = self
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        *req = true;
        drop(req);
        self.shutdown_cv.notify_all();
    }

    fn stats(&self) -> RouterStats {
        RouterStats {
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            unrouted: self.counters.unrouted.load(Ordering::Relaxed),
            parse_errors: self.counters.parse_errors.load(Ordering::Relaxed),
        }
    }
}

/// A running router. Call [`RouterHandle::shutdown`] for graceful
/// teardown.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Router-local counter snapshot.
    pub fn stats(&self) -> RouterStats {
        self.shared.stats()
    }

    /// Current breaker state per backend, in backend order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.shared.breakers.iter().map(Breaker::state).collect()
    }

    /// Block until some client sends the `shutdown` op (or
    /// [`RouterHandle::request_shutdown`] is called locally).
    pub fn wait_shutdown_requested(&self) {
        let mut req = self
            .shared
            .shutdown_requested
            .lock()
            .expect("flag poisoned");
        while !*req {
            req = self.shared.shutdown_cv.wait(req).expect("flag poisoned");
        }
    }

    /// Begin refusing new work, as if a `shutdown` op had arrived.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Graceful teardown: stop accepting, close client connections, join
    /// every thread. Backends are *not* shut down unless a client's
    /// `shutdown` op already broadcast one.
    pub fn shutdown(mut self) -> RouterStats {
        self.shared.request_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        for conn in self.shared.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let threads: Vec<_> = {
            let mut guard = self.shared.conn_threads.lock().expect("threads poisoned");
            guard.drain(..).collect()
        };
        for h in threads {
            let _ = h.join();
        }
        self.shared.stats()
    }
}

/// Spawn a router on `cfg.listen_addr` over `cfg.backends`.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or
/// `InvalidInput` when no backends are configured.
pub fn spawn_router(cfg: RouterConfig) -> io::Result<RouterHandle> {
    if cfg.backends.is_empty() {
        return Err(io::Error::new(
            IoErrorKind::InvalidInput,
            "router needs at least one --backend",
        ));
    }
    let listener = TcpListener::bind(&cfg.listen_addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let vnodes = if cfg.vnodes == 0 {
        DEFAULT_VNODES
    } else {
        cfg.vnodes
    };
    let breakers = (0..cfg.backends.len())
        .map(|b| Breaker::new(cfg.breaker_threshold, cfg.breaker_backoff, b as u64))
        .collect();
    let shared = Arc::new(RouterShared {
        ring: HashRing::new(cfg.backends.len(), vnodes),
        backends: cfg.backends,
        breakers,
        counters: Counters::default(),
        connect_timeout: cfg.connect_timeout,
        faults: cfg.faults,
        shutting_down: AtomicBool::new(false),
        shutdown_requested: Mutex::new(false),
        shutdown_cv: Condvar::new(),
        conns: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("iconv-route-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor")
    };
    let health = {
        let shared = Arc::clone(&shared);
        let interval = cfg.health_interval;
        std::thread::Builder::new()
            .name("iconv-route-health".to_owned())
            .spawn(move || health_loop(&shared, interval))
            .expect("spawn health thread")
    };
    Ok(RouterHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        health: Some(health),
    })
}

/// Probe every backend each interval so breakers recover (and trip)
/// without client traffic. A probe is one fresh connection and one ping —
/// it deliberately bypasses `allow()`'s half-open transition only for
/// breakers still inside their backoff window.
fn health_loop(shared: &Arc<RouterShared>, interval: Duration) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        for (b, addr) in shared.backends.iter().enumerate() {
            if !shared.breakers[b].allow() {
                continue;
            }
            let ok = Client::connect(addr)
                .ok()
                .is_some_and(|mut c| c.ping().is_ok());
            if ok {
                shared.breakers[b].on_success();
            } else {
                shared.breakers[b].on_failure();
            }
        }
        std::thread::sleep(interval);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(e) = start_connection(stream, shared) {
                    eprintln!("routed: failed to start connection: {e}");
                }
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn start_connection(stream: TcpStream, shared: &Arc<RouterShared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .push(stream.try_clone()?);
    let handler = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("iconv-route-conn".to_owned())
            .spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| conn_loop(stream, &shared)));
            })?
    };
    shared
        .conn_threads
        .lock()
        .expect("threads poisoned")
        .push(handler);
    Ok(())
}

/// One client connection, in strict lockstep: read a line, emit its
/// response lines, flush, repeat. The thread owns its backend
/// connections, so concurrent clients never contend on a shared socket.
fn conn_loop(stream: TcpStream, shared: &Arc<RouterShared>) {
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut out = BufWriter::new(stream);
    let mut conns: Vec<Option<Client>> = (0..shared.backends.len()).map(|_| None).collect();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let responses = handle_request(line.trim_end(), shared, &mut conns);
        for r in &responses {
            if out.write_all(r.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                return;
            }
        }
        if out.flush().is_err() {
            return;
        }
    }
}

/// One request↔backend exchange: send `line`, read `n_lines` responses.
/// Any failure (connect, injected seam, socket) drops the backend
/// connection so the next exchange starts clean — a half-read stream
/// must never be re-used.
fn exchange(
    shared: &RouterShared,
    conns: &mut [Option<Client>],
    b: usize,
    line: &str,
    n_lines: usize,
) -> io::Result<Vec<String>> {
    if conns[b].is_none() {
        conns[b] = Some(Client::connect_retry(
            &shared.backends[b],
            shared.connect_timeout,
        )?);
    }
    let c = conns[b].as_mut().expect("just connected");
    let res = (|| {
        if let Some(f) = &shared.faults {
            if f.decide(FaultSite::RouteSend).is_some() {
                f.observe(FaultSite::RouteSend);
                return Err(io::Error::other("injected route-send failure"));
            }
        }
        c.send_line(line)?;
        c.flush()?;
        let mut lines = Vec::with_capacity(n_lines);
        for _ in 0..n_lines {
            if let Some(f) = &shared.faults {
                if f.decide(FaultSite::RouteRecv).is_some() {
                    f.observe(FaultSite::RouteRecv);
                    return Err(io::Error::other("injected route-recv failure"));
                }
            }
            lines.push(c.recv_line()?);
        }
        Ok(lines)
    })();
    if res.is_err() {
        conns[b] = None;
    }
    res
}

/// Forward a raw single-response line along `key`'s failover order,
/// returning the backend's response verbatim; `None` when no backend is
/// healthy.
fn forward_raw(
    shared: &RouterShared,
    conns: &mut [Option<Client>],
    key: &str,
    line: &str,
) -> Option<String> {
    for (nth, b) in shared.ring.failover_order(key).into_iter().enumerate() {
        if !shared.breakers[b].allow() {
            continue;
        }
        match exchange(shared, conns, b, line, 1) {
            Ok(mut lines) => {
                shared.breakers[b].on_success();
                shared.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                if nth > 0 {
                    shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                }
                return lines.pop();
            }
            Err(_) => shared.breakers[b].on_failure(),
        }
    }
    shared.counters.unrouted.fetch_add(1, Ordering::Relaxed);
    None
}

/// Decode one sub-batch exchange: `n` item lines (`{"item":j,<body>}` —
/// the id-free rendering, since sub-batches are sent without an id)
/// followed by the summary. Returns the extracted bodies in sub-batch
/// order.
fn split_batch_lines(lines: &[String], n: usize) -> Result<Vec<String>, String> {
    if lines.len() != n + 1 {
        return Err(format!("expected {} lines, got {}", n + 1, lines.len()));
    }
    let mut out = Vec::with_capacity(n);
    for (j, line) in lines[..n].iter().enumerate() {
        let prefix = format!("{{\"item\":{j},");
        let body = line
            .strip_prefix(prefix.as_str())
            .and_then(|rest| rest.strip_suffix('}'))
            .ok_or_else(|| format!("malformed batch item line: {line:?}"))?;
        out.push(body.to_owned());
    }
    if !lines[n].contains("\"batch\":") {
        return Err(format!("missing batch summary: {:?}", lines[n]));
    }
    Ok(out)
}

/// Scatter a batch across the fleet by key ownership and reassemble the
/// item stream in the client's order. Failed sub-batches walk their
/// items' failover orders (idempotent re-issue); items no backend will
/// take come back as `busy` errors, mirroring queue overload.
fn handle_batch(
    shared: &RouterShared,
    conns: &mut [Option<Client>],
    id: Option<&str>,
    items: &[Work],
    deadline_ms: Option<u64>,
) -> Vec<String> {
    let n = items.len();
    let keys: Vec<String> = items.iter().map(key::canonical_key).collect();
    let mut bodies: Vec<Option<String>> = (0..n).map(|_| None).collect();
    let mut unresolved: Vec<usize> = (0..n).collect();
    while !unresolved.is_empty() {
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &i in &unresolved {
            let target = shared
                .ring
                .failover_order(&keys[i])
                .into_iter()
                .find(|&b| shared.breakers[b].allow());
            match target {
                Some(b) => groups.entry(b).or_default().push(i),
                None => {
                    shared.counters.unrouted.fetch_add(1, Ordering::Relaxed);
                    bodies[i] = Some(error_body(ErrorKind::Busy, "no healthy backend"));
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        unresolved = Vec::new();
        for (b, idxs) in groups {
            let works: Vec<Work> = idxs.iter().map(|&i| items[i]).collect();
            let line = encode_batch(None, &works, deadline_ms);
            let relayed = exchange(shared, conns, b, &line, idxs.len() + 1)
                .map_err(|e| e.to_string())
                .and_then(|lines| split_batch_lines(&lines, idxs.len()));
            match relayed {
                Ok(item_bodies) => {
                    shared.breakers[b].on_success();
                    shared.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                    for (j, &i) in idxs.iter().enumerate() {
                        bodies[i] = Some(item_bodies[j].clone());
                    }
                }
                Err(_) => {
                    shared.breakers[b].on_failure();
                    shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    unresolved.extend(idxs);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(n + 1);
    let mut errors = 0u64;
    for (i, body) in bodies.iter().enumerate() {
        let fallback = error_body(ErrorKind::Busy, "no healthy backend");
        let body = body.as_deref().unwrap_or(&fallback);
        if body.starts_with("\"ok\":false") {
            errors += 1;
        }
        out.push(finish_item_response(id, i, body));
    }
    out.push(finish_response(id, &batch_summary_body(n as u64, errors)));
    out
}

/// Merge every healthy backend's `stats` snapshot into one fleet view.
fn handle_stats(
    shared: &RouterShared,
    conns: &mut [Option<Client>],
    id: Option<&str>,
) -> Vec<String> {
    let mut merged = StatsSnapshot::default();
    let mut seen = 0usize;
    for b in 0..shared.backends.len() {
        if !shared.breakers[b].allow() {
            continue;
        }
        let parsed = exchange(shared, conns, b, &encode_simple("stats", None), 1)
            .ok()
            .and_then(|lines| protocol::parse_response(&lines[0]).ok());
        match parsed {
            Some(Response::Stats { stats, .. }) => {
                shared.breakers[b].on_success();
                merged.merge(&stats);
                seen += 1;
            }
            _ => shared.breakers[b].on_failure(),
        }
    }
    if seen == 0 {
        shared.counters.unrouted.fetch_add(1, Ordering::Relaxed);
        return vec![finish_response(
            id,
            &error_body(ErrorKind::Busy, "no healthy backend"),
        )];
    }
    vec![finish_response(id, &stats_body(&merged))]
}

/// Concatenate every healthy backend's per-shard counters, renumbering
/// shard ids so the fleet reads as one wide striped cache.
fn handle_shards(
    shared: &RouterShared,
    conns: &mut [Option<Client>],
    id: Option<&str>,
) -> Vec<String> {
    let mut all: Vec<ShardStat> = Vec::new();
    let mut seen = 0usize;
    for b in 0..shared.backends.len() {
        if !shared.breakers[b].allow() {
            continue;
        }
        let parsed = exchange(shared, conns, b, &encode_simple("shards", None), 1)
            .ok()
            .and_then(|lines| protocol::parse_response(&lines[0]).ok());
        match parsed {
            Some(Response::Shards { shards, .. }) => {
                shared.breakers[b].on_success();
                all.extend(shards);
                seen += 1;
            }
            _ => shared.breakers[b].on_failure(),
        }
    }
    if seen == 0 {
        shared.counters.unrouted.fetch_add(1, Ordering::Relaxed);
        return vec![finish_response(
            id,
            &error_body(ErrorKind::Busy, "no healthy backend"),
        )];
    }
    for (k, s) in all.iter_mut().enumerate() {
        s.shard = k as u64;
    }
    vec![finish_response(id, &shards_body(&all))]
}

/// Handle one client line, returning the response lines to emit in order.
fn handle_request(line: &str, shared: &RouterShared, conns: &mut [Option<Client>]) -> Vec<String> {
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(e) => {
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            return vec![finish_response(
                e.id.as_deref(),
                &error_body(e.kind, &e.detail),
            )];
        }
    };
    match req {
        Request::Ping { id } => vec![finish_response(id.as_deref(), &pong_body())],
        Request::Stats { id } => handle_stats(shared, conns, id.as_deref()),
        Request::Shards { id } => handle_shards(shared, conns, id.as_deref()),
        Request::Shutdown { id } => {
            // Broadcast to the whole fleet (breakers ignored: a draining
            // fleet should not leave a flaky backend running), then honor
            // it locally.
            for b in 0..shared.backends.len() {
                let _ = exchange(shared, conns, b, &encode_simple("shutdown", None), 1);
            }
            shared.request_shutdown();
            vec![finish_response(id.as_deref(), &shutdown_body())]
        }
        Request::Estimate(req) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return vec![finish_response(
                    req.id.as_deref(),
                    &error_body(ErrorKind::ShuttingDown, "router is draining"),
                )];
            }
            let cache_key = key::canonical_key(&req.work);
            match forward_raw(shared, conns, &cache_key, line) {
                Some(response) => vec![response],
                None => vec![finish_response(
                    req.id.as_deref(),
                    &error_body(ErrorKind::Busy, "no healthy backend"),
                )],
            }
        }
        Request::TunedEstimate {
            id, shape, target, ..
        } => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return vec![finish_response(
                    id.as_deref(),
                    &error_body(ErrorKind::ShuttingDown, "router is draining"),
                )];
            }
            // Key the forward by the layer's *tune* key, so one backend
            // owns a layer's search, its tune-store entry, and every
            // `"hw":"tuned"` estimate derived from it — the same affinity
            // the plain `tune` op gets through its canonical key.
            let cache_key = key::canonical_key(&Work::Tune { shape, target });
            match forward_raw(shared, conns, &cache_key, line) {
                Some(response) => vec![response],
                None => vec![finish_response(
                    id.as_deref(),
                    &error_body(ErrorKind::Busy, "no healthy backend"),
                )],
            }
        }
        Request::Batch {
            id,
            items,
            deadline_ms,
        } => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                // Mirror `served`'s refusal shape: n error items + summary.
                let n = items.len();
                let body = error_body(ErrorKind::ShuttingDown, "router is draining");
                let mut out: Vec<String> = (0..n)
                    .map(|i| finish_item_response(id.as_deref(), i, &body))
                    .collect();
                out.push(finish_response(
                    id.as_deref(),
                    &batch_summary_body(n as u64, n as u64),
                ));
                return out;
            }
            handle_batch(shared, conns, id.as_deref(), &items, deadline_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let b = Breaker::new(3, policy, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        b.on_failure();
        assert!(b.allow(), "below threshold stays closed");
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Within the backoff window nothing passes; after it one probe does.
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.allow(), "elapsed backoff admits a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_longer_backoff() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let b = Breaker::new(1, policy, 7);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(3));
        assert!(b.allow());
        b.on_failure(); // the probe failed
        assert_eq!(b.state(), BreakerState::Open);
        // Attempt counter grew, so the second window is at least as long
        // as the first's ceiling permits (both jittered; just re-probe).
        std::thread::sleep(Duration::from_millis(10));
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn split_batch_lines_extracts_bodies_in_order() {
        let lines = vec![
            "{\"item\":0,\"ok\":true,\"x\":1}".to_owned(),
            "{\"item\":1,\"ok\":false,\"error\":\"deadline\",\"detail\":\"d\"}".to_owned(),
            "{\"ok\":true,\"batch\":{\"items\":2,\"errors\":1}}".to_owned(),
        ];
        let bodies = split_batch_lines(&lines, 2).unwrap();
        assert_eq!(bodies[0], "\"ok\":true,\"x\":1");
        assert!(bodies[1].starts_with("\"ok\":false"));
        // Wrong count, wrong prefix, or a missing summary are all errors.
        assert!(split_batch_lines(&lines, 1).is_err());
        assert!(split_batch_lines(&lines[1..], 2).is_err());
    }

    #[test]
    fn router_requires_backends() {
        match spawn_router(RouterConfig::default()) {
            Err(e) => assert_eq!(e.kind(), IoErrorKind::InvalidInput),
            Ok(_) => panic!("empty backend list must be rejected"),
        }
    }
}
