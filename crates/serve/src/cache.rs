//! A plain LRU report cache: canonical key → cached response body.
//!
//! The implementation is a slab-backed intrusive doubly-linked list with a
//! `HashMap` index — `get`, `insert` and eviction are all O(1). Values are
//! the response *bodies* produced by [`crate::engine::evaluate`], which do
//! not embed the client id, so a replayed entry is byte-identical to a
//! freshly simulated one.

use std::collections::HashMap;

const NONE: usize = usize::MAX;

struct Entry {
    key: String,
    value: String,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache of response bodies.
pub struct LruCache {
    map: HashMap<String, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl LruCache {
    /// Create a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
            evictions: 0,
        }
    }

    /// Current population.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries displaced by capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &str) -> Option<String> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: String, value: String) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NONE);
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[idx].prev = NONE;
        self.slab[idx].next = NONE;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NONE;
        self.slab[idx].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("c".into(), "3".into()); // evicts a
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("b").as_deref(), Some("2"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_promotes() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        assert!(c.get("a").is_some()); // a is now most recent
        c.insert("c".into(), "3".into()); // evicts b
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a").as_deref(), Some("1"));
    }

    #[test]
    fn insert_refreshes_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("a".into(), "1'".into()); // refresh, no eviction
        assert_eq!(c.evictions(), 0);
        c.insert("c".into(), "3".into()); // evicts b (a was refreshed)
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a").as_deref(), Some("1'"));
    }

    #[test]
    fn capacity_one_churns_correctly() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(format!("k{i}"), format!("v{i}"));
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&format!("k{i}")).unwrap(), format!("v{i}"));
        }
        assert_eq!(c.evictions(), 99);
    }
}
