//! The report cache: a lock-striped LRU with per-shard single-flight.
//!
//! Two layers live here. [`LruCache`] is the plain slab-backed intrusive
//! doubly-linked-list LRU (O(1) `get`/`insert`/eviction), generic over its
//! value type so it serves both as a shard and as the reference model in
//! the equivalence proptests. [`StripedCache`] is what the server actually
//! holds: `N` independent `Mutex<LruCache>` shards selected by the stable
//! hash of the canonical key ([`iconv_api::shard_of`]), so connections
//! touching different key ranges never contend on one global lock.
//!
//! Values are shared [`Body`] handles (`Arc<str>`) of the response bodies
//! produced by [`crate::engine::evaluate`]: a hit clones a pointer, not the
//! body, so the only work under a shard lock is a hash lookup and two list
//! relinks — pinned by the zero-allocation test in `tests/alloc_counting`.
//! Bodies do not embed the client id, so a replayed entry is byte-identical
//! to a freshly simulated one.
//!
//! Each shard also carries a **single-flight registry**: when two
//! connections miss on the same key concurrently, the first becomes the
//! *leader* (it runs the one simulation) and the rest *join* as waiters
//! whose response callbacks fire when the leader [`StripedCache::complete`]s
//! the flight. Followers are counted as hits — their bytes came from the
//! cache-to-be — which preserves `hits + misses == requests` exactly while
//! eliminating the duplicate simulations the old design dispatched.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::protocol::{ErrorKind, ShardStat};

const NONE: usize = usize::MAX;

/// A cached response body: shared, immutable, cheap to hand out.
pub type Body = Arc<str>;

struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache, generic over the stored value.
pub struct LruCache<V = String> {
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl<V: Clone> LruCache<V> {
    /// Create a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
            evictions: 0,
        }
    }

    /// Current population.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries displaced by capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &str) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: String, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NONE);
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[idx].prev = NONE;
        self.slab[idx].next = NONE;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NONE;
        self.slab[idx].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }
}

// ---------------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------------

/// How a led simulation ended: the body every waiter shares, or the typed
/// error every waiter inherits (a follower shares its leader's fate — the
/// alternative, re-running the simulation per follower, is exactly the
/// duplicate work single-flight exists to remove).
#[derive(Debug, Clone)]
pub enum FlightOutcome {
    /// The simulation succeeded; the body is now cached.
    Ready(Body),
    /// The simulation failed (deadline, busy, worker panic, drain).
    Failed(ErrorKind, String),
}

/// A follower's completion callback. Invoked exactly once, *outside* any
/// shard lock, when the flight completes.
pub type Waiter = Box<dyn FnOnce(&FlightOutcome) + Send>;

/// What [`StripedCache::admit`] decided for a key.
pub enum Admission {
    /// The key was cached (possibly raced in since the caller's `get`):
    /// answer immediately from this body.
    Cached(Body),
    /// The caller is the leader: it must run the simulation and call
    /// [`StripedCache::complete`] exactly once, on every path.
    Lead,
    /// A flight for this key is already in progress; the caller's waiter
    /// is registered and will be invoked on completion.
    Joined,
}

struct Shard {
    lru: LruCache<Body>,
    /// Key → waiters blocked on the in-progress flight for that key. The
    /// leader itself is not in the list; `Vec::new()` marks a flight with
    /// no followers yet.
    inflight: HashMap<String, Vec<Waiter>>,
}

/// Per-shard hit/miss counters, updated lock-free (the callers already
/// know the shard index; the counters need no protection from the LRU
/// lock and keeping them outside shortens the critical section).
#[derive(Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

// ---------------------------------------------------------------------------
// StripedCache
// ---------------------------------------------------------------------------

/// The server's report cache: `n_shards` independent LRU shards with
/// per-shard single-flight registries and counters.
pub struct StripedCache {
    shards: Box<[Mutex<Shard>]>,
    counters: Box<[ShardCounters]>,
}

impl StripedCache {
    /// Default shard count: enough stripes that 8–16 concurrent
    /// connections rarely collide, few enough that a 16 Ki-entry cache
    /// still gives every shard a useful population.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Create a striped cache of `total_capacity` entries spread over
    /// `n_shards` shards (each shard gets `ceil(total/n)`, min 1).
    ///
    /// # Panics
    ///
    /// Panics if `total_capacity` or `n_shards` is zero.
    pub fn new(total_capacity: usize, n_shards: usize) -> Self {
        assert!(total_capacity > 0, "cache capacity must be positive");
        assert!(n_shards > 0, "shard count must be positive");
        let per_shard = total_capacity.div_ceil(n_shards).max(1);
        let shards = (0..n_shards)
            .map(|_| {
                Mutex::new(Shard {
                    lru: LruCache::new(per_shard),
                    inflight: HashMap::new(),
                })
            })
            .collect();
        let counters = (0..n_shards).map(|_| ShardCounters::default()).collect();
        Self { shards, counters }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` lives in — the same stable hash the `routed`
    /// consistent-hash ring uses, so placement is reproducible everywhere.
    pub fn shard_of(&self, key: &str) -> usize {
        iconv_api::shard_of(key, self.shards.len())
    }

    /// Lock one shard, recovering from poisoning: the cache is auxiliary
    /// state (worst case a stale LRU order), and the server's containment
    /// story already isolates panics per connection/worker.
    fn lock(&self, shard: usize) -> MutexGuard<'_, Shard> {
        self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look up `key`, promoting it on a hit. Does **not** touch the
    /// hit/miss counters — the server counts at response-delivery points
    /// so single-flight followers are counted exactly once.
    pub fn get(&self, key: &str) -> Option<Body> {
        self.lock(self.shard_of(key)).lru.get(key)
    }

    /// Insert (or refresh) `key` directly, bypassing single-flight. Used
    /// by tests and by cache warm-up paths; the server's simulation paths
    /// go through [`Self::admit`]/[`Self::complete`].
    pub fn insert(&self, key: String, body: Body) {
        let shard = self.shard_of(&key);
        self.lock(shard).lru.insert(key, body);
    }

    /// Decide how a missing key is produced: answer from cache (someone
    /// completed it since the caller's lock-free `get`), lead the one
    /// simulation, or join the flight in progress with `waiter`.
    ///
    /// The waiter is only retained in the [`Admission::Joined`] case; on
    /// `Cached`/`Lead` it is dropped unused.
    pub fn admit(
        &self,
        key: &str,
        waiter: impl FnOnce(&FlightOutcome) + Send + 'static,
    ) -> Admission {
        let shard = self.shard_of(key);
        let mut guard = self.lock(shard);
        // Re-check under the lock: the get→admit window is not atomic and
        // another connection may have completed the flight in between.
        if let Some(body) = guard.lru.get(key) {
            return Admission::Cached(body);
        }
        match guard.inflight.get_mut(key) {
            Some(waiters) => {
                waiters.push(Box::new(waiter));
                Admission::Joined
            }
            None => {
                guard.inflight.insert(key.to_owned(), Vec::new());
                Admission::Lead
            }
        }
    }

    /// Complete the flight for `key`: cache the body on success, clear the
    /// in-flight entry, and invoke every registered waiter with the
    /// outcome — outside the shard lock, so a waiter may freely touch the
    /// cache (or anything else) without deadlocking.
    ///
    /// The leader must call this exactly once per [`Admission::Lead`], on
    /// success *and* on every failure path; a leaked flight would strand
    /// its followers forever.
    pub fn complete(&self, key: &str, outcome: &FlightOutcome) {
        let shard = self.shard_of(key);
        let waiters = {
            let mut guard = self.lock(shard);
            if let FlightOutcome::Ready(body) = outcome {
                guard.lru.insert(key.to_owned(), Arc::clone(body));
            }
            guard.inflight.remove(key).unwrap_or_default()
        };
        for waiter in waiters {
            waiter(outcome);
        }
    }

    /// Count a hit against `shard` (an index from [`Self::shard_of`]).
    pub fn note_hit(&self, shard: usize) {
        self.counters[shard].hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a miss against `shard`.
    pub fn note_miss(&self, shard: usize) {
        self.counters[shard].misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Total hits across all shards — the global `stats.hits` counter.
    pub fn hits(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Total misses across all shards — the global `stats.misses` counter.
    pub fn misses(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Total evictions across all shards.
    pub fn evictions(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.lock(i).lru.evictions())
            .sum()
    }

    /// Total population across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).lru.len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summed capacity across shards (per-shard rounding may make this
    /// slightly exceed the configured total).
    pub fn capacity(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock(i).lru.capacity())
            .sum()
    }

    /// Per-shard counter snapshot, in shard order — the `shards` op's
    /// payload. Sums equal the global counters by construction.
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        (0..self.shards.len())
            .map(|i| {
                let guard = self.lock(i);
                ShardStat {
                    shard: i as u64,
                    hits: self.counters[i].hits.load(Ordering::Relaxed),
                    misses: self.counters[i].misses.load(Ordering::Relaxed),
                    evictions: guard.lru.evictions(),
                    entries: guard.lru.len() as u64,
                    capacity: guard.lru.capacity() as u64,
                    in_flight: guard.inflight.len() as u64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), "1".to_owned());
        c.insert("b".into(), "2".to_owned());
        c.insert("c".into(), "3".to_owned()); // evicts a
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("b").as_deref(), Some("2"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_promotes() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), "1".to_owned());
        c.insert("b".into(), "2".to_owned());
        assert!(c.get("a").is_some()); // a is now most recent
        c.insert("c".into(), "3".to_owned()); // evicts b
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a").as_deref(), Some("1"));
    }

    #[test]
    fn insert_refreshes_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), "1".to_owned());
        c.insert("b".into(), "2".to_owned());
        c.insert("a".into(), "1'".to_owned()); // refresh, no eviction
        assert_eq!(c.evictions(), 0);
        c.insert("c".into(), "3".to_owned()); // evicts b (a was refreshed)
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a").as_deref(), Some("1'"));
    }

    #[test]
    fn capacity_one_churns_correctly() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(format!("k{i}"), format!("v{i}"));
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&format!("k{i}")).unwrap(), format!("v{i}"));
        }
        assert_eq!(c.evictions(), 99);
    }

    #[test]
    fn arc_bodies_work_as_values() {
        let mut c: LruCache<Body> = LruCache::new(2);
        c.insert("a".into(), Body::from("body-a"));
        let b1 = c.get("a").unwrap();
        let b2 = c.get("a").unwrap();
        assert!(Arc::ptr_eq(&b1, &b2), "hits must share one allocation");
        assert_eq!(&*b1, "body-a");
    }

    #[test]
    fn striped_get_insert_roundtrip_and_stats_sum() {
        let c = StripedCache::new(64, 4);
        assert_eq!(c.n_shards(), 4);
        for i in 0..32 {
            c.insert(format!("key-{i}"), Body::from(format!("v{i}")));
        }
        for i in 0..32 {
            let key = format!("key-{i}");
            let body = c.get(&key).unwrap_or_else(|| panic!("lost {key}"));
            assert_eq!(&*body, &format!("v{i}"));
            c.note_hit(c.shard_of(&key));
        }
        assert_eq!(c.len(), 32);
        assert_eq!(c.hits(), 32);
        let stats = c.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), c.hits());
        assert_eq!(stats.iter().map(|s| s.entries).sum::<u64>(), 32);
        // Keys actually spread across shards.
        assert!(
            stats.iter().filter(|s| s.entries > 0).count() >= 2,
            "all keys landed in one shard: {stats:?}"
        );
    }

    #[test]
    fn single_flight_leader_then_followers() {
        let c = Arc::new(StripedCache::new(16, 2));
        let fired = Arc::new(AtomicUsize::new(0));

        // First admit leads.
        let f = Arc::clone(&fired);
        assert!(matches!(
            c.admit("k", move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            }),
            Admission::Lead
        ));
        // Subsequent admits join; their waiters haven't fired yet.
        for _ in 0..3 {
            let f = Arc::clone(&fired);
            let got_body = move |o: &FlightOutcome| {
                assert!(matches!(o, FlightOutcome::Ready(b) if &**b == "the-body"));
                f.fetch_add(1, Ordering::SeqCst);
            };
            assert!(matches!(c.admit("k", got_body), Admission::Joined));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 0);

        // Completion caches the body and fires exactly the three joiners
        // (the leader's closure was dropped unused).
        c.complete("k", &FlightOutcome::Ready(Body::from("the-body")));
        assert_eq!(fired.load(Ordering::SeqCst), 3);
        assert_eq!(c.get("k").as_deref(), Some("the-body"));

        // The flight is gone: a new admit for the same key is a cache hit.
        assert!(matches!(c.admit("k", |_| {}), Admission::Cached(_)));
    }

    #[test]
    fn single_flight_failure_propagates_to_followers() {
        let c = StripedCache::new(16, 2);
        assert!(matches!(c.admit("k", |_| {}), Admission::Lead));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        assert!(matches!(
            c.admit("k", move |o: &FlightOutcome| {
                assert!(
                    matches!(o, FlightOutcome::Failed(ErrorKind::Deadline, d) if d == "expired")
                );
                f.fetch_add(1, Ordering::SeqCst);
            }),
            Admission::Joined
        ));
        c.complete(
            "k",
            &FlightOutcome::Failed(ErrorKind::Deadline, "expired".to_owned()),
        );
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Failure caches nothing; the next admit leads a fresh flight.
        assert!(c.get("k").is_none());
        assert!(matches!(c.admit("k", |_| {}), Admission::Lead));
    }

    #[test]
    fn admit_rechecks_cache_under_the_lock() {
        let c = StripedCache::new(16, 1);
        c.insert("k".into(), Body::from("v"));
        // Even though the caller never called get(), admit sees the entry.
        match c.admit("k", |_| {}) {
            Admission::Cached(b) => assert_eq!(&*b, "v"),
            _ => panic!("expected Cached"),
        }
    }

    #[test]
    fn shard_placement_is_stable() {
        let c = StripedCache::new(64, 8);
        for i in 0..100 {
            let key = format!("key-{i}");
            assert_eq!(c.shard_of(&key), iconv_api::shard_of(&key, 8));
        }
    }
}
