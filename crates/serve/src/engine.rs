//! Request evaluation: resolve hardware overrides, run the simulator, and
//! render the response body.
//!
//! Evaluation is a pure function of the [`Work`] value — no clock, no
//! randomness, no ambient configuration — which is what makes the cached
//! and freshly-computed paths byte-identical and the whole service
//! deterministic under any concurrency.

use iconv_gpusim::GpuSim;
use iconv_tpusim::{LayerReport, Simulator};
use iconv_tune::{tune, InProcessSource, TuneOptions};

use crate::protocol::{gpu_body, tpu_body, tune_body, GpuEstimate, TpuEstimate, Work};

/// Resolve a hardware spec to the full TPU configuration it denotes
/// (re-exported from [`iconv_api`]). This runs *before* cache-key
/// derivation, so overrides equal to the chip's defaults do not fragment
/// the cache. Specs are validated when parsed, so resolution cannot fail
/// on wire-reachable values.
pub use iconv_api::resolve_tpu;

/// GPU counterpart of [`resolve_tpu`]: the default spec resolves to
/// exactly the V100 preset, so historical requests hit historical keys.
pub use iconv_api::resolve_gpu;

fn tpu_estimate(rep: &LayerReport) -> TpuEstimate {
    TpuEstimate {
        cycles: rep.cycles,
        compute_cycles: rep.compute_cycles,
        exposed_memory_cycles: rep.exposed_memory_cycles,
        dram_bytes: rep.dram_bytes,
        workspace_bytes: rep.workspace_bytes,
        flops: rep.flops,
        dispatch: rep.phases.dispatch,
        first_fill: rep.phases.first_fill,
        steady: rep.phases.steady,
    }
}

/// Run the simulation a request asks for and render the response body
/// (the id-free interior cached by the server).
pub fn evaluate(work: &Work) -> String {
    match work {
        Work::TpuConv { shape, mode, hw } => {
            let rep = Simulator::new(resolve_tpu(hw)).simulate_conv("serve", shape, *mode);
            tpu_body(&tpu_estimate(&rep))
        }
        Work::TpuPass {
            shape,
            pass,
            mode,
            hw,
        } => {
            let rep = Simulator::new(resolve_tpu(hw)).simulate_pass("serve", shape, *pass, *mode);
            tpu_body(&tpu_estimate(&rep))
        }
        Work::TpuGemm { m, n, k, hw } => {
            let rep = Simulator::new(resolve_tpu(hw)).simulate_gemm("serve", *m, *n, *k);
            tpu_body(&tpu_estimate(&rep))
        }
        Work::GpuConv { shape, algo, hw } => {
            let rep = GpuSim::new(resolve_gpu(hw)).simulate_conv("serve", shape, *algo);
            gpu_body(&GpuEstimate {
                cycles: rep.timing.cycles,
                compute_cycles: rep.timing.compute_cycles,
                memory_cycles: rep.timing.memory_cycles,
                transform_cycles: rep.transform_cycles,
                blocks: rep.timing.blocks,
                flops: rep.conv_flops,
            })
        }
        Work::GpuPass {
            shape,
            pass,
            algo,
            hw,
        } => {
            let rep = GpuSim::new(resolve_gpu(hw)).simulate_pass("serve", shape, *pass, *algo);
            gpu_body(&GpuEstimate {
                cycles: rep.timing.cycles,
                compute_cycles: rep.timing.compute_cycles,
                memory_cycles: rep.timing.memory_cycles,
                transform_cycles: rep.transform_cycles,
                blocks: rep.timing.blocks,
                flops: rep.conv_flops,
            })
        }
        Work::Tune { shape, target } => {
            // The search measures candidates sequentially inside this one
            // job — worker-count independence is what keeps the cached
            // body byte-identical on any server configuration.
            let est = tune(
                &InProcessSource::new(),
                shape,
                *target,
                &TuneOptions::default(),
            );
            tune_body(&est)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_response, Response, TpuHwSpec};
    use iconv_gpusim::{GpuAlgo, GpuConfig};
    use iconv_tensor::ConvShape;
    use iconv_tpusim::{SimMode, TpuConfig};

    fn shape() -> ConvShape {
        ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap()
    }

    #[test]
    fn tpu_body_matches_the_in_process_simulator() {
        let work = Work::TpuConv {
            shape: shape(),
            mode: SimMode::ChannelFirst,
            hw: TpuHwSpec::default(),
        };
        let line = crate::protocol::finish_response(None, &evaluate(&work));
        let Ok(Response::Tpu { est, .. }) = parse_response(&line) else {
            panic!("bad body: {line}");
        };
        let rep =
            Simulator::new(TpuConfig::tpu_v2()).simulate_conv("x", &shape(), SimMode::ChannelFirst);
        assert_eq!(est.cycles, rep.cycles);
        assert_eq!(est.dram_bytes, rep.dram_bytes);
        assert_eq!(est.dispatch + est.first_fill + est.steady, est.cycles);
    }

    #[test]
    fn gpu_body_is_bit_exact() {
        let work = Work::GpuConv {
            shape: shape(),
            algo: GpuAlgo::ChannelFirst { reuse: true },
            hw: Default::default(),
        };
        let line = crate::protocol::finish_response(None, &evaluate(&work));
        let Ok(Response::Gpu { est, .. }) = parse_response(&line) else {
            panic!("bad body: {line}");
        };
        let rep = GpuSim::new(GpuConfig::v100()).simulate_conv(
            "x",
            &shape(),
            GpuAlgo::ChannelFirst { reuse: true },
        );
        assert_eq!(est.cycles.to_bits(), rep.timing.cycles.to_bits());
        assert_eq!(
            est.compute_cycles.to_bits(),
            rep.timing.compute_cycles.to_bits()
        );
        assert_eq!(
            est.memory_cycles.to_bits(),
            rep.timing.memory_cycles.to_bits()
        );
    }
}
