//! Open-loop capacity measurement: arrival schedules, a
//! coordinated-omission-safe runner, and a knee-finding rate search.
//!
//! The closed-loop `loadgen` path answers "how fast can N lockstep
//! connections go?" — a number that *hides* overload, because a slow
//! response silently throttles the generator. This module asks the
//! capacity question instead: **at a fixed offered rate, what latency do
//! clients actually experience, and what is the highest rate the server
//! sustains under a p99 SLO?**
//!
//! Three design rules, all load-bearing:
//!
//! * **Open loop.** Requests are sent on a virtual-clock schedule derived
//!   only from `(index, rate)` — the sender never waits for responses, so
//!   in-flight depth is unbounded and overload shows up as queueing delay
//!   instead of a lower send rate.
//! * **Intended-time stamping.** Every latency is measured from the
//!   *intended* send instant (`index / rate`), not the actual write. If
//!   the transport stalls, the requests queued behind the stall are
//!   charged their full wait — the classic coordinated-omission fix. The
//!   naive (actual-send) histogram is kept alongside for contrast, and a
//!   regression test pins the gap between the two.
//! * **Determinism.** The schedule — arrival times, framing mix, Zipfian
//!   key choices — is a pure function of the seed, via the same
//!   stateless indexed-draw discipline as `iconv-faults` decision
//!   streams. Two builds of the same spec are byte-identical.
//!
//! The framing mix covers the full request vocabulary: single `conv`/
//! `gemm` estimates, multi-item `batch` requests, `sweep` expansions, and
//! `tune` design-space searches (whose layer keys follow the same Zipfian
//! skew, so the server's tune store sees a realistic cold/warm split).
//!
//! [`find_knee`] bisects offered rates against a p99 SLO to report the
//! max sustained throughput; `loadgen --open-loop` drives all of this and
//! persists `BENCH_capacity.json`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use iconv_api::hist::LatencyHist;
use iconv_api::zipf::{mix64, ZipfSampler, GOLDEN_GAMMA};

use crate::protocol::{
    encode_batch, encode_estimate, encode_sweep, EstimateRequest, SweepSpec, SweepTarget, TpuChip,
    TuneTarget, Work,
};

/// Salt separating the framing-mix decision stream from the key stream.
const FRAME_SALT: u64 = 0x6F70_656E_6C6F_6F70; // "openloop"
/// Salt separating the Zipfian key stream from the framing stream.
const KEY_SALT: u64 = 0x7A69_7066_6B65_7973; // "zipfkeys"
/// Salt separating the tune-target decision stream from everything else.
const TUNE_SALT: u64 = 0x7475_6E65_7461_7267; // "tunetarg"
/// Per-entry stride in the key-draw index space: a batch entry consumes
/// one draw per item, and no entry draws more than this many keys.
const DRAWS_PER_ENTRY: u64 = 64;

/// Percent of entries framed as single `conv`/`gemm` requests.
const PCT_SINGLE: u64 = 78;
/// Percent framed as single + multi-item `batch` requests (cumulative).
const PCT_SINGLE_OR_BATCH: u64 = 90;
/// Percent framed as single + batch + `sweep` requests (cumulative); the
/// remainder is framed as `tune` design-space searches.
const PCT_UP_TO_SWEEP: u64 = 95;

/// Parameters for one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// Offered arrival rate, requests per second. Must be positive.
    pub rate_rps: u64,
    /// Number of scheduled request entries.
    pub requests: usize,
    /// Connection-pool size; entries round-robin across connections.
    pub connections: usize,
    /// Master seed for the framing mix and the key sampler.
    pub seed: u64,
    /// Zipf exponent for key popularity skew. Must be positive.
    pub zipf_s: f64,
    /// Items per `batch`-framed entry.
    pub batch_size: usize,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        Self {
            rate_rps: 300,
            requests: 3000,
            connections: 8,
            seed: 42,
            zipf_s: 1.1,
            batch_size: 8,
        }
    }
}

/// One scheduled request: an encoded wire line plus its arrival time and
/// accounting (how many response lines it elicits, how many estimate
/// items it carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Position in the schedule (also the virtual-clock tick).
    pub index: u64,
    /// Intended send instant, nanoseconds from the epoch of the run.
    pub intended_ns: u64,
    /// The newline-terminated request is `line + "\n"`.
    pub line: String,
    /// Response lines this request elicits (batch = items + summary).
    pub n_lines: usize,
    /// Estimate items carried (single = 1, batch = k, sweep = expansion).
    pub items: u64,
}

/// The intended send instant for schedule position `index` at `rate_rps`:
/// exactly `index / rate` seconds, in integer nanoseconds (u128 interim
/// math, so no overflow up to centuries of schedule).
pub fn intended_ns(index: u64, rate_rps: u64) -> u64 {
    assert!(rate_rps > 0, "arrival rate must be positive");
    ((index as u128) * 1_000_000_000u128 / rate_rps as u128) as u64
}

/// The sweep framing used by open-loop schedules: a small GPU conv sweep
/// whose expansion is cheap enough to keep sweep entries the same order
/// of magnitude as batches. Returns the spec and its expansion size.
fn sweep_framing() -> (SweepSpec, usize) {
    let base =
        iconv_tensor::ConvShape::square(1, 3, 8, 16, 3, 1, 1).expect("open-loop sweep base shape");
    let mut spec = SweepSpec::new(
        base,
        SweepTarget::Gpu {
            algo: iconv_gpusim::GpuAlgo::CudnnImplicit,
        },
    );
    spec.cis = vec![4, 8, 16, 32];
    let n = spec.expand().expect("open-loop sweep expands").len();
    (spec, n)
}

/// Build the full deterministic schedule for `spec` over the canonical
/// work population `works` (normally the paper workload table). Entry
/// `i`'s framing and key choices depend only on `(spec.seed, i)`, so the
/// schedule is reproducible byte-for-byte and independent of evaluation
/// order.
pub fn build_schedule(spec: &OpenLoopSpec, works: &[Work]) -> Vec<Entry> {
    assert!(!works.is_empty(), "schedule needs a non-empty population");
    assert!(spec.rate_rps > 0, "arrival rate must be positive");
    let zipf = ZipfSampler::new(works.len(), spec.zipf_s, spec.seed ^ KEY_SALT);
    let (sweep_spec, sweep_items) = sweep_framing();
    let sweep_line = encode_sweep(None, &sweep_spec, None);
    // The tune band draws its layer from the conv shapes of the same
    // population (first-seen order, deduplicated), so the tune-key
    // popularity follows the same Zipfian skew as the estimate keys.
    let mut tune_shapes: Vec<iconv_tensor::ConvShape> = Vec::new();
    for w in works {
        if let Work::TpuConv { shape, .. }
        | Work::TpuPass { shape, .. }
        | Work::GpuConv { shape, .. }
        | Work::GpuPass { shape, .. }
        | Work::Tune { shape, .. } = w
        {
            if !tune_shapes.contains(shape) {
                tune_shapes.push(*shape);
            }
        }
    }
    let k = spec.batch_size.max(1);
    assert!(
        k as u64 <= DRAWS_PER_ENTRY,
        "batch_size exceeds the per-entry key-draw stride"
    );
    (0..spec.requests as u64)
        .map(|i| {
            let frame = mix64((spec.seed ^ FRAME_SALT) ^ i.wrapping_mul(GOLDEN_GAMMA)) % 100;
            let base_draw = i * DRAWS_PER_ENTRY;
            let (line, n_lines, items) = if frame < PCT_SINGLE {
                let work = works[zipf.rank_at(base_draw)];
                let line = encode_estimate(&EstimateRequest {
                    id: None,
                    work,
                    deadline_ms: None,
                });
                (line, 1, 1)
            } else if frame < PCT_SINGLE_OR_BATCH {
                let group: Vec<Work> = (0..k as u64)
                    .map(|j| works[zipf.rank_at(base_draw + j)])
                    .collect();
                (encode_batch(None, &group, None), k + 1, k as u64)
            } else if frame < PCT_UP_TO_SWEEP || tune_shapes.is_empty() {
                (sweep_line.clone(), sweep_items + 1, sweep_items as u64)
            } else {
                let shape = tune_shapes[zipf.rank_at(base_draw) % tune_shapes.len()];
                let target = match mix64((spec.seed ^ TUNE_SALT) ^ i.wrapping_mul(GOLDEN_GAMMA)) % 3
                {
                    0 => TuneTarget::Tpu { chip: TpuChip::V2 },
                    1 => TuneTarget::Tpu { chip: TpuChip::V3 },
                    _ => TuneTarget::Gpu,
                };
                let line = encode_estimate(&EstimateRequest {
                    id: None,
                    work: Work::Tune { shape, target },
                    deadline_ms: None,
                });
                (line, 1, 1)
            };
            Entry {
                index: i,
                intended_ns: intended_ns(i, spec.rate_rps),
                line,
                n_lines,
                items,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Virtual replay — the coordinated-omission test seam
// ---------------------------------------------------------------------------

/// A service-time model for [`replay_virtual`]: given an entry, how many
/// nanoseconds does the (virtual) server take to answer it? Implemented
/// for closures so tests can script stalls at exact positions.
pub trait ServiceModel {
    /// Service time for `entry`, nanoseconds.
    fn service_ns(&mut self, entry: &Entry) -> u64;
}

impl<F: FnMut(&Entry) -> u64> ServiceModel for F {
    fn service_ns(&mut self, entry: &Entry) -> u64 {
        self(entry)
    }
}

/// Replay a schedule against a scripted service model on a virtual clock
/// with one serial server, returning `(intended, naive)` latency
/// histograms in microseconds.
///
/// The intended histogram stamps each completion against the entry's
/// scheduled arrival — queueing delay behind a stall is charged in full.
/// The naive histogram stamps against the moment the (blocked) client
/// could actually send — exactly the coordinated-omission mistake. Their
/// divergence under a scripted stall is what the regression test pins.
pub fn replay_virtual(
    schedule: &[Entry],
    model: &mut dyn ServiceModel,
) -> (LatencyHist, LatencyHist) {
    let mut now = 0u64;
    let mut intended = LatencyHist::new();
    let mut naive = LatencyHist::new();
    for e in schedule {
        if now < e.intended_ns {
            now = e.intended_ns;
        }
        let send = now;
        now += model.service_ns(e);
        intended.record((now - e.intended_ns) / 1000);
        naive.record((now - send) / 1000);
    }
    (intended, naive)
}

// ---------------------------------------------------------------------------
// Wire runner
// ---------------------------------------------------------------------------

/// Read budget per response line before the runner declares the server
/// wedged; generous because knee probes intentionally overload it.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Results of one open-loop run over real sockets. All latencies in
/// microseconds.
#[derive(Debug, Clone)]
pub struct OpenLoopRun {
    /// Intended-time latency (coordinated-omission safe).
    pub hist: LatencyHist,
    /// Actual-send-time latency (the naive number, for contrast).
    pub naive_hist: LatencyHist,
    /// Response lines carrying a typed error body.
    pub errors: u64,
    /// Schedule entries completed.
    pub entries: u64,
    /// Estimate items completed.
    pub items: u64,
    /// Wall time from epoch to last completion, seconds.
    pub wall_seconds: f64,
    /// Completed entries over wall time.
    pub achieved_rps: f64,
}

struct ConnOutcome {
    hist: LatencyHist,
    naive_hist: LatencyHist,
    errors: u64,
    entries: u64,
    items: u64,
}

/// Execute `schedule` against the server at `addr` over a pool of
/// `connections` sockets (entry `i` rides connection `i % connections`).
/// Each connection splits into a sender thread — which sleeps until each
/// entry's intended instant and writes regardless of outstanding
/// responses — and a receiver thread that stamps completions. Returns
/// the merged run, or the first transport error.
pub fn run_open_loop(
    addr: &str,
    connections: usize,
    schedule: &[Entry],
) -> Result<OpenLoopRun, String> {
    let pool = connections.max(1);
    let epoch = Instant::now();
    let outcomes: Vec<Result<ConnOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool)
            .map(|c| {
                scope.spawn(move || -> Result<ConnOutcome, String> {
                    let mine: Vec<&Entry> = schedule
                        .iter()
                        .filter(|e| e.index as usize % pool == c)
                        .collect();
                    if mine.is_empty() {
                        return Ok(ConnOutcome {
                            hist: LatencyHist::new(),
                            naive_hist: LatencyHist::new(),
                            errors: 0,
                            entries: 0,
                            items: 0,
                        });
                    }
                    let stream =
                        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
                    let reader_stream = stream
                        .try_clone()
                        .map_err(|e| format!("clone socket: {e}"))?;
                    // (intended_ns, actual_send_ns, n_lines, items)
                    let (tx, rx) = mpsc::channel::<(u64, u64, usize, u64)>();

                    let recv = scope.spawn(move || -> Result<ConnOutcome, String> {
                        let mut out = ConnOutcome {
                            hist: LatencyHist::new(),
                            naive_hist: LatencyHist::new(),
                            errors: 0,
                            entries: 0,
                            items: 0,
                        };
                        let mut reader = BufReader::new(reader_stream);
                        let mut line = String::new();
                        for (intended_ns, actual_ns, n_lines, items) in rx {
                            for _ in 0..n_lines {
                                line.clear();
                                let n = reader
                                    .read_line(&mut line)
                                    .map_err(|e| format!("read: {e}"))?;
                                if n == 0 {
                                    return Err("server closed the connection".into());
                                }
                                if line.contains("\"error\"") {
                                    out.errors += 1;
                                }
                            }
                            let done_ns = epoch.elapsed().as_nanos() as u64;
                            out.hist.record(done_ns.saturating_sub(intended_ns) / 1000);
                            out.naive_hist
                                .record(done_ns.saturating_sub(actual_ns) / 1000);
                            out.entries += 1;
                            out.items += items;
                        }
                        Ok(out)
                    });

                    let mut send_err = None;
                    {
                        let mut writer = stream;
                        for e in &mine {
                            let target_ns = e.intended_ns;
                            let elapsed = epoch.elapsed().as_nanos() as u64;
                            if elapsed < target_ns {
                                std::thread::sleep(Duration::from_nanos(target_ns - elapsed));
                            }
                            let actual_ns = epoch.elapsed().as_nanos() as u64;
                            if let Err(e) = writer
                                .write_all(e.line.as_bytes())
                                .and_then(|()| writer.write_all(b"\n"))
                                .and_then(|()| writer.flush())
                            {
                                send_err = Some(format!("send: {e}"));
                                break;
                            }
                            if tx
                                .send((e.intended_ns, actual_ns, e.n_lines, e.items))
                                .is_err()
                            {
                                break; // receiver died; its error wins below
                            }
                        }
                        drop(tx); // receiver drains and exits
                    }
                    let got = recv.join().expect("receiver thread panicked")?;
                    match send_err {
                        Some(err) => Err(err),
                        None => Ok(got),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect()
    });
    let wall = epoch.elapsed().as_secs_f64();

    let mut run = OpenLoopRun {
        hist: LatencyHist::new(),
        naive_hist: LatencyHist::new(),
        errors: 0,
        entries: 0,
        items: 0,
        wall_seconds: wall,
        achieved_rps: 0.0,
    };
    for outcome in outcomes {
        let o = outcome?;
        run.hist.merge(&o.hist);
        run.naive_hist.merge(&o.naive_hist);
        run.errors += o.errors;
        run.entries += o.entries;
        run.items += o.items;
    }
    run.achieved_rps = run.entries as f64 / wall.max(1e-9);
    Ok(run)
}

// ---------------------------------------------------------------------------
// Knee search
// ---------------------------------------------------------------------------

/// One probe of the knee search.
#[derive(Debug, Clone, PartialEq)]
pub struct KneeProbe {
    /// Offered rate for this probe.
    pub rate_rps: u64,
    /// Intended-time p99 observed, microseconds.
    pub p99_us: u64,
    /// Completed-entry throughput actually achieved.
    pub achieved_rps: f64,
    /// Whether the probe met the SLO.
    pub ok: bool,
}

/// Result of [`find_knee`]: the highest probed rate whose intended-time
/// p99 met the SLO, with the full probe trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Knee {
    /// The SLO the search bisected against, microseconds.
    pub slo_p99_us: u64,
    /// Max offered rate that sustained the SLO (0 = even `lo` failed).
    pub max_rps: u64,
    /// Intended-time p99 at that rate, microseconds.
    pub p99_us_at_knee: u64,
    /// Every probe, in search order.
    pub probes: Vec<KneeProbe>,
}

/// Bisect offered rates in `[lo, hi]` for the maximum rate whose
/// intended-time p99 stays within `slo_p99_us`. `probe` runs one bounded
/// soak at a rate and returns `(p99_us, achieved_rps)`. The search stops
/// once the bracket is within 10% of its lower edge — capacity knees are
/// not sharp enough to justify more probes.
pub fn find_knee(
    lo: u64,
    hi: u64,
    slo_p99_us: u64,
    probe: &mut dyn FnMut(u64) -> (u64, f64),
) -> Knee {
    assert!(lo >= 1 && hi >= lo, "need 1 <= lo <= hi");
    let mut probes = Vec::new();
    let mut run = |rate: u64, probes: &mut Vec<KneeProbe>| -> bool {
        let (p99_us, achieved_rps) = probe(rate);
        let ok = p99_us <= slo_p99_us;
        probes.push(KneeProbe {
            rate_rps: rate,
            p99_us,
            achieved_rps,
            ok,
        });
        ok
    };

    if !run(lo, &mut probes) {
        let p99 = probes[0].p99_us;
        return Knee {
            slo_p99_us,
            max_rps: 0,
            p99_us_at_knee: p99,
            probes,
        };
    }
    let (mut lo, mut hi) = (lo, hi);
    let mut best = (lo, probes[0].p99_us);
    if hi > lo {
        if run(hi, &mut probes) {
            best = (hi, probes.last().expect("probe recorded").p99_us);
            lo = hi;
        }
        while hi - lo > std::cmp::max(1, lo / 10) {
            let mid = lo + (hi - lo) / 2;
            if run(mid, &mut probes) {
                best = (mid, probes.last().expect("probe recorded").p99_us);
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    Knee {
        slo_p99_us,
        max_rps: best.0,
        p99_us_at_knee: best.1,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intended_timeline_is_exact() {
        assert_eq!(intended_ns(0, 1000), 0);
        assert_eq!(intended_ns(1, 1000), 1_000_000);
        assert_eq!(intended_ns(3, 3), 1_000_000_000);
        // u128 interim math: no overflow at large indices × fine rates.
        assert_eq!(
            intended_ns(u32::MAX as u64, 1),
            u32::MAX as u64 * 1_000_000_000
        );
    }

    /// Synthetic knee: p99 is flat below a capacity cliff and explodes
    /// above it. The bisection must land within 10% under the cliff.
    #[test]
    fn find_knee_brackets_a_synthetic_cliff() {
        const CLIFF: u64 = 730;
        let mut probe = |rate: u64| -> (u64, f64) {
            if rate <= CLIFF {
                (900 + rate / 10, rate as f64)
            } else {
                (250_000, CLIFF as f64)
            }
        };
        let knee = find_knee(50, 4000, 5_000, &mut probe);
        assert!(
            knee.max_rps <= CLIFF,
            "knee {} above cliff {CLIFF}",
            knee.max_rps
        );
        assert!(
            knee.max_rps as f64 >= CLIFF as f64 * 0.85,
            "knee {} too far below cliff {CLIFF}",
            knee.max_rps
        );
        assert!(knee.p99_us_at_knee <= 5_000);
        assert!(knee.probes.iter().filter(|p| !p.ok).count() >= 1);
        // The trace brackets the answer: every ok probe <= every failed one.
        let max_ok = knee
            .probes
            .iter()
            .filter(|p| p.ok)
            .map(|p| p.rate_rps)
            .max()
            .unwrap();
        let min_bad = knee
            .probes
            .iter()
            .filter(|p| !p.ok)
            .map(|p| p.rate_rps)
            .min()
            .unwrap();
        assert!(max_ok < min_bad);
        assert_eq!(knee.max_rps, max_ok);
    }

    #[test]
    fn find_knee_reports_zero_when_floor_fails() {
        let mut probe = |_rate: u64| -> (u64, f64) { (999_999, 0.0) };
        let knee = find_knee(10, 1000, 1_000, &mut probe);
        assert_eq!(knee.max_rps, 0);
        assert_eq!(
            knee.probes.len(),
            1,
            "no point probing above a failed floor"
        );
    }

    #[test]
    fn find_knee_accepts_degenerate_bracket() {
        let mut probe = |_rate: u64| -> (u64, f64) { (100, 42.0) };
        let knee = find_knee(7, 7, 1_000, &mut probe);
        assert_eq!(knee.max_rps, 7);
        assert_eq!(knee.probes.len(), 1);
    }
}
