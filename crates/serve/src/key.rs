//! Content-addressed cache keys.
//!
//! The key derivation lives in [`iconv_api::canonical_key`] so that every
//! consumer of the request vocabulary — this server, the bench harness, and
//! external clients — agrees on which requests denote the same simulation.
//! This module re-exports it under the server's historical path.
//!
//! A key is the canonical text rendering of *what will be simulated*:
//! the fully-resolved hardware configuration, the lowering mode after the
//! engine's own normalization, and every shape field. Requests that denote
//! the same simulation — default vs. explicit padding, `dilation:1` spelled
//! or omitted, an `hw` override equal to the chip default, an auto
//! channel-first group vs. the same group requested explicitly — collapse
//! to one key; requests that differ in any observable way never collide,
//! because every component is an injective rendering
//! ([`iconv_tpusim::TpuConfig::canonical_key`] and friends).

pub use iconv_api::canonical_key;
