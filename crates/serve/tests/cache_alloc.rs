//! Proves the "a warm hit allocates nothing" claim for the striped cache:
//! once a body is cached, `get` performs **zero** heap allocations — the
//! lookup walks the slab by index, promotion relinks in place, and the
//! body comes back as an [`Arc`] clone instead of the full-string copy the
//! old global cache made under its one lock.
//!
//! Same counting-`#[global_allocator]` idiom as
//! `crates/faults/tests/alloc_counting.rs`: the test binary is
//! single-threaded by construction (one `#[test]` fn), so the global
//! counter is not perturbed by unrelated test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use iconv_serve::cache::{Body, StripedCache};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (r, ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn warm_hits_are_zero_alloc() {
    let cache = StripedCache::new(64, 4);
    // A realistically sized body: a full TPU estimate rendering.
    let body: Body = Arc::from(
        "\"ok\":true,\"est\":{\"cycles\":123456789,\"macs\":987654321,\
         \"sram_bytes\":262144,\"dram_bytes\":1048576,\"utilization\":\"0.8734\"}",
    );
    let keys: Vec<String> = (0..16)
        .map(|k| format!("tpuv3;conv;n1c64h56w56k64r3s3;mode=cf;key-{k}"))
        .collect();
    for key in &keys {
        cache.insert(key.clone(), Arc::clone(&body));
    }

    // Warm the promotion path once (first gets relink list nodes that were
    // just pushed; nothing should allocate even here, but the claim under
    // test is the steady state).
    for key in &keys {
        assert!(cache.get(key).is_some());
    }

    let (hits, n) = allocs_during(|| {
        let mut hits = 0usize;
        for _ in 0..1000 {
            for key in &keys {
                // Dropping the Arc clone inside the loop exercises
                // dealloc too — refcounting must never touch the heap.
                if cache.get(key).is_some() {
                    hits += 1;
                }
            }
        }
        hits
    });
    assert_eq!(hits, 16_000, "every warm get must hit");
    assert_eq!(n, 0, "warm hits allocated {n} times");

    // Counter reads are also allocation-free, so stats polling never
    // perturbs the hot path either.
    let (_, n) = allocs_during(|| {
        assert_eq!(cache.hits(), 0, "get() itself does not count hits");
        assert!(cache.misses() == 0 && cache.evictions() == 0);
        assert_eq!(cache.len(), 16);
    });
    assert_eq!(n, 0, "counter reads allocated {n} times");
}
