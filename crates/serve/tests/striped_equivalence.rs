//! Striping must not change what the cache *remembers* — only how it
//! locks. This drives a [`StripedCache`] and a reference model (N
//! independent single-lock [`LruCache`] shards routed by the same
//! [`shard_of`] hash) through the same interleaved insert/get trace and
//! demands identical answers at every step, identical final population,
//! and identical eviction counts.
//!
//! Runs under the offline `proptest` shim: deterministic seed, no
//! shrinking — a failing case prints its inputs via the assertion message.

use proptest::prelude::*;

use iconv_api::shard_of;
use iconv_serve::cache::{Body, LruCache, StripedCache};

/// The reference: per-shard LRU with the same capacity split the striped
/// cache uses (`total.div_ceil(n).max(1)` per shard), no shared state.
struct Reference {
    shards: Vec<LruCache<Body>>,
}

impl Reference {
    fn new(total_capacity: usize, n_shards: usize) -> Self {
        let per_shard = total_capacity.div_ceil(n_shards).max(1);
        Self {
            shards: (0..n_shards).map(|_| LruCache::new(per_shard)).collect(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Body> {
        let s = shard_of(key, self.shards.len());
        self.shards[s].get(key)
    }

    fn insert(&mut self, key: &str, body: &Body) {
        let s = shard_of(key, self.shards.len());
        self.shards[s].insert(key.to_owned(), Arc::clone(body));
    }

    fn len(&self) -> usize {
        self.shards.iter().map(LruCache::len).sum()
    }

    fn evictions(&self) -> u64 {
        self.shards.iter().map(LruCache::evictions).sum()
    }
}

use std::sync::Arc;

/// Expand a seed into an interleaved trace of `(key index, is_insert)`
/// steps (splitmix64 — the shim has no `collection::vec` strategy). The
/// key space is small on purpose, so traces revisit keys and exercise
/// promotion and eviction.
fn trace(seed: u64, len: usize) -> Vec<(u8, bool)> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z % 24) as u8, z & (1 << 32) != 0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every step answers identically, and the final population and
    /// eviction ledger agree, for every (capacity, shard count) corner —
    /// including 1 shard (the old global cache) and more shards than
    /// capacity.
    #[test]
    fn striped_matches_reference(seed in 0u64..u64::MAX,
                                 len in 1usize..200,
                                 capacity in 1usize..12,
                                 n_shards in 1usize..6) {
        let striped = StripedCache::new(capacity, n_shards);
        let mut reference = Reference::new(capacity, n_shards);
        prop_assert_eq!(striped.n_shards(), n_shards);
        for (step, &(k, is_insert)) in trace(seed, len).iter().enumerate() {
            let key = format!("tpu;conv;key-{k}");
            if is_insert {
                let body: Body = Arc::from(format!("\"ok\":true,\"v\":{k}").as_str());
                striped.insert(key.clone(), Arc::clone(&body));
                reference.insert(&key, &body);
            } else {
                let got = striped.get(&key);
                let want = reference.get(&key);
                prop_assert_eq!(
                    got.as_deref(), want.as_deref(),
                    "step {} diverged on {:?} (capacity {}, {} shards)",
                    step, key, capacity, n_shards
                );
            }
            prop_assert_eq!(striped.len(), reference.len(), "population at step {}", step);
        }
        prop_assert_eq!(striped.evictions(), reference.evictions());
    }

    /// `shard_of` and the striped cache agree on key placement, so the
    /// per-shard stats a router aggregates describe the same partition the
    /// reference model used.
    #[test]
    fn shard_routing_is_stable(k in 0u8..=255, n_shards in 1usize..9) {
        let striped = StripedCache::new(64, n_shards);
        let key = format!("gpu;conv;key-{k}");
        prop_assert_eq!(striped.shard_of(&key), shard_of(&key, n_shards));
    }
}
