//! Server-side histogram ledger: the per-stripe service-time histograms
//! merge to exactly the global histogram the `stats` op reports, the
//! histogram's count partitions with the `hits + misses == requests`
//! ledger, and the same holds fleet-wide through the router's
//! merge-and-re-encode stats path (which exercises the wire round-trip of
//! the sparse encoding).

use iconv_api::LatencyHist;
use iconv_serve::client::{Client, DEFAULT_CONNECT_TIMEOUT};
use iconv_serve::protocol::{encode_estimate, EstimateRequest};
use iconv_serve::router::{spawn_router, RouterConfig};
use iconv_serve::server::{spawn, ServerConfig};

use iconv_api::table::workload_works;

/// Mixed traffic: every small-model work once as a single request, then
/// the first 24 again as one batch (warm hits), through `conns` clients.
fn drive(addr: &str, conns: usize) -> u64 {
    let works = workload_works(true);
    let mut items = 0u64;
    let mut clients: Vec<Client> = (0..conns)
        .map(|_| Client::connect_retry(addr, DEFAULT_CONNECT_TIMEOUT).expect("connect"))
        .collect();
    for (i, &work) in works.iter().enumerate() {
        let line = encode_estimate(&EstimateRequest {
            id: None,
            work,
            deadline_ms: None,
        });
        let resp = clients[i % conns].call(&line).expect("estimate");
        assert!(
            !matches!(resp, iconv_serve::protocol::Response::Error { .. }),
            "estimate failed"
        );
        items += 1;
    }
    let batch = &works[..24.min(works.len())];
    let replies = clients[0].batch(batch, None).expect("batch");
    for reply in replies {
        reply.expect("batch item");
        items += 1;
    }
    items
}

#[test]
fn stripe_hists_sum_exactly_to_the_global_ledger() {
    let handle = spawn(ServerConfig::default()).expect("spawn server");
    let addr = handle.local_addr().to_string();
    let items = drive(&addr, 4);

    let mut control = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let stats = control.stats().expect("stats RPC");

    // The classic ledger...
    assert_eq!(stats.hits + stats.misses, stats.requests);
    assert_eq!(stats.requests, items);
    // ...now extends to the histogram: one recorded latency per request.
    assert_eq!(stats.service_hist.count(), stats.requests);

    // The per-stripe histograms are the whole story: their merge is
    // structurally identical to the global histogram on the wire.
    let mut merged = LatencyHist::new();
    for stripe in handle.service_hist_stripes() {
        merged.merge(&stripe);
    }
    assert_eq!(merged, stats.service_hist, "stripe merge != global hist");
    assert!(merged.max() >= merged.min());
    handle.shutdown();
}

#[test]
fn router_fleet_merge_preserves_the_hist_ledger() {
    let backends: Vec<_> = (0..3)
        .map(|_| spawn(ServerConfig::default()).expect("spawn backend"))
        .collect();
    let router = spawn_router(RouterConfig {
        backends: backends
            .iter()
            .map(|b| b.local_addr().to_string())
            .collect(),
        ..RouterConfig::default()
    })
    .expect("spawn router");
    let addr = router.local_addr().to_string();
    let items = drive(&addr, 4);

    let mut control = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let fleet = control.stats().expect("router stats RPC");
    assert_eq!(fleet.hits + fleet.misses, fleet.requests);
    assert_eq!(fleet.requests, items);
    assert_eq!(fleet.service_hist.count(), fleet.requests);

    // The router's answer must equal a manual merge of the backends'
    // own snapshots — the router path re-encodes the merged histogram,
    // so this also proves the sparse encoding survives a second hop.
    let mut manual = LatencyHist::new();
    let mut manual_requests = 0u64;
    for backend in &backends {
        let mut c =
            Client::connect_retry(&backend.local_addr().to_string(), DEFAULT_CONNECT_TIMEOUT)
                .expect("backend connect");
        let s = c.stats().expect("backend stats");
        assert_eq!(s.service_hist.count(), s.requests, "backend ledger");
        manual.merge(&s.service_hist);
        manual_requests += s.requests;
    }
    assert_eq!(manual_requests, fleet.requests);
    assert_eq!(manual, fleet.service_hist, "fleet merge != manual merge");

    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}
