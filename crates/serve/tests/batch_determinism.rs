//! Batch determinism: concurrent clients replaying the same workload
//! table through `batch` requests must read byte-identical reply streams,
//! for every worker count and batch size — and the estimate bytes must not
//! depend on how the table was partitioned into batches, whether the
//! cache was cold or warm, or whether the batch arrived as an item array
//! or an equivalent sweep spec.

use iconv_api::table::workload_works;
use iconv_api::{SweepSpec, SweepTarget, TpuHwSpec, Work};
use iconv_serve::protocol::{encode_batch, encode_sweep};
use iconv_serve::{spawn, Client, ServerConfig, StatsSnapshot, DEFAULT_CONNECT_TIMEOUT};
use iconv_tensor::{ConvShape, Layout};
use iconv_tpusim::SimMode;

/// Replay `works` as batches of `batch` items on one connection and
/// return the raw reply transcript (every line, in arrival order).
fn replay(addr: &str, works: &[Work], batch: usize) -> Vec<String> {
    let mut client = Client::connect_retry(addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let mut transcript = Vec::new();
    for chunk in works.chunks(batch) {
        client
            .send_line(&encode_batch(None, chunk, None))
            .expect("send");
        client.flush().expect("flush");
        for _ in 0..=chunk.len() {
            transcript.push(client.recv_line().expect("recv"));
        }
    }
    transcript
}

/// The estimate bodies in item order, with the partitioning-dependent
/// `"item":N,` tags removed and summary lines dropped — the
/// representation that must be invariant across batch sizes.
fn bodies(transcript: &[String]) -> Vec<String> {
    transcript
        .iter()
        .filter(|l| l.contains("\"item\":"))
        .map(|l| {
            let tag_start = l.find("\"item\":").expect("tagged");
            let tag_end = l[tag_start..].find(',').expect("tag comma") + tag_start + 1;
            format!("{}{}", &l[..tag_start], &l[tag_end..])
        })
        .collect()
}

fn run_config(workers: usize, works: &[Work], batch: usize) -> (Vec<Vec<String>>, StatsSnapshot) {
    let handle = spawn(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("spawn serve");
    let addr = handle.local_addr().to_string();
    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| replay(&addr, works, batch)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let stats = handle.shutdown();
    (transcripts, stats)
}

#[test]
fn concurrent_batched_replays_are_byte_identical() {
    let works = workload_works(true);
    let n = works.len();
    assert!(n >= 8, "small table too small to exercise batching");
    let mut reference_bodies: Option<Vec<String>> = None;
    for workers in [1usize, 4] {
        for batch in [1usize, 7, n] {
            let (transcripts, stats) = run_config(workers, &works, batch);
            for t in &transcripts[1..] {
                assert_eq!(
                    t, &transcripts[0],
                    "client transcripts diverged at workers={workers} batch={batch}"
                );
            }
            let got = bodies(&transcripts[0]);
            assert_eq!(got.len(), n, "one body per item");
            match &reference_bodies {
                None => reference_bodies = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "estimate bytes changed at workers={workers} batch={batch}"
                ),
            }
            // Counter conservation: every batch item is a hit, a miss, or
            // an error — here, never an error.
            let items_sent = 4 * n as u64;
            let batches_sent = 4 * n.div_ceil(batch) as u64;
            assert_eq!(stats.batches, batches_sent);
            assert_eq!(stats.batch_items, items_sent);
            assert_eq!(stats.batch_errors, 0);
            assert_eq!(
                stats.batch_hits + stats.batch_misses,
                stats.batch_items,
                "hits+misses must cover every item (workers={workers} batch={batch})"
            );
            assert_eq!(stats.hits + stats.misses, stats.requests);
            assert_eq!(stats.requests, items_sent);
        }
    }
}

#[test]
fn sweep_form_is_byte_identical_to_its_item_expansion() {
    let base = ConvShape::square(1, 3, 28, 32, 3, 1, 1).expect("base shape");
    let mut spec = SweepSpec::new(
        base,
        SweepTarget::Tpu {
            mode: SimMode::ChannelFirst,
            hw: TpuHwSpec::default(),
        },
    );
    spec.cis = vec![3, 16, 64];
    spec.strides = vec![1, 2];
    spec.layouts = vec![Layout::Hwcn, Layout::Nchw];
    let items = spec.expand().expect("expand");

    let handle = spawn(ServerConfig::default()).expect("spawn serve");
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");

    let mut read_span = |line: &str, n: usize| -> Vec<String> {
        client.send_line(line).expect("send");
        client.flush().expect("flush");
        (0..=n).map(|_| client.recv_line().expect("recv")).collect()
    };
    // Sweep first (cold cache), expansion second (warm): the replies must
    // be byte-identical anyway, because cached replay grafts the same
    // body bytes.
    let via_sweep = read_span(&encode_sweep(None, &spec, None), items.len());
    let via_items = read_span(&encode_batch(None, &items, None), items.len());
    let stats = handle.shutdown();

    assert_eq!(via_sweep, via_items, "sweep vs expansion transcripts");
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.batch_items, 2 * items.len() as u64);
    assert_eq!(stats.batch_errors, 0);
    assert!(
        stats.batch_hits >= items.len() as u64,
        "second pass must be all hits"
    );
}
