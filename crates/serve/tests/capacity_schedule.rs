//! Determinism contract for the open-loop schedule: the full schedule —
//! arrival instants, framing mix, encoded wire lines, key choices — is a
//! pure function of the spec. Same seed → byte-identical; different seed
//! → different traffic; and the intended-time axis is exact integer
//! arithmetic, not accumulated floating-point drift.

use iconv_api::table::workload_works;
use iconv_serve::capacity::{build_schedule, intended_ns, OpenLoopSpec};

fn spec(seed: u64) -> OpenLoopSpec {
    OpenLoopSpec {
        rate_rps: 750,
        requests: 1500,
        seed,
        ..OpenLoopSpec::default()
    }
}

#[test]
fn same_seed_builds_a_byte_identical_schedule() {
    let works = workload_works(true);
    let a = build_schedule(&spec(0xDEAD_BEEF), &works);
    let b = build_schedule(&spec(0xDEAD_BEEF), &works);
    assert_eq!(a, b, "schedule must be a pure function of the spec");
    // Byte-identical includes the encoded wire lines, not just metadata.
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.line, y.line);
    }
}

#[test]
fn different_seeds_build_different_traffic() {
    let works = workload_works(true);
    let a = build_schedule(&spec(1), &works);
    let b = build_schedule(&spec(2), &works);
    assert_ne!(a, b);
    // Arrival times are seed-independent: only the traffic differs.
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.intended_ns, y.intended_ns);
    }
}

#[test]
fn intended_instants_are_exact_integer_ticks() {
    let works = workload_works(true);
    let sched = build_schedule(&spec(9), &works);
    for (i, e) in sched.iter().enumerate() {
        assert_eq!(e.index, i as u64);
        assert_eq!(e.intended_ns, intended_ns(i as u64, 750));
        assert_eq!(e.intended_ns, i as u64 * 1_000_000_000 / 750);
    }
}

#[test]
fn framing_mix_covers_all_four_shapes() {
    let works = workload_works(true);
    let sched = build_schedule(&spec(42), &works);
    let tunes = sched
        .iter()
        .filter(|e| e.line.contains("\"op\":\"tune\""))
        .count();
    let singles = sched.iter().filter(|e| e.items == 1).count() - tunes;
    let batches = sched.iter().filter(|e| e.items == 8).count();
    let sweeps = sched
        .iter()
        .filter(|e| e.items != 1 && e.items != 8)
        .count();
    assert!(
        singles > 0 && batches > 0 && sweeps > 0 && tunes > 0,
        "all framings must appear (singles {singles}, batches {batches}, \
         sweeps {sweeps}, tunes {tunes})"
    );
    // The mix tracks its 78/12/5/5 weights loosely (deterministic, so the
    // bounds only guard against a broken decision stream).
    assert!(
        singles * 100 > sched.len() * 60,
        "singles {singles}/{}",
        sched.len()
    );
    assert!(
        batches * 100 < sched.len() * 30,
        "batches {batches}/{}",
        sched.len()
    );
    assert!(
        tunes * 100 < sched.len() * 15,
        "tunes {tunes}/{}",
        sched.len()
    );
    // Tune entries carry every target kind, not just one.
    let tune_lines: Vec<&str> = sched
        .iter()
        .filter(|e| e.line.contains("\"op\":\"tune\""))
        .map(|e| e.line.as_str())
        .collect();
    assert!(
        tune_lines
            .iter()
            .any(|l| l.contains("\"target\":\"tpu\"") && !l.contains("\"chip\":\"v3\"")),
        "no tune entry targets TPUv2"
    );
    assert!(
        tune_lines.iter().any(|l| l.contains("\"chip\":\"v3\"")),
        "no tune entry targets TPUv3"
    );
    assert!(
        tune_lines.iter().any(|l| l.contains("\"target\":\"gpu\"")),
        "no tune entry targets the GPU"
    );
    // Accounting is consistent: a batch of k answers k+1 lines.
    for e in &sched {
        if e.items == 1 {
            assert_eq!(e.n_lines, 1);
        } else {
            assert_eq!(e.n_lines as u64, e.items + 1, "items + summary line");
        }
    }
}
