//! `tune` as a first-class serve op, end to end:
//!
//! * **Byte-identity** — one `(shape, target)` has one answer, whatever the
//!   worker count, the shard count, or whether the request crossed a
//!   `routed` front-end; `"hw":"tuned"` estimates are byte-identical to the
//!   concrete estimate the winning config denotes.
//! * **Ledger** — `tunes == tune_searches + tune_cached` at every quiescent
//!   point, through single requests, batch framing, and store hits.
//! * **Persistence** — a server with `--tune-cache` saves its store on
//!   shutdown and boots warm: the next boot answers tunes without a search
//!   and refuses to boot at all on a corrupt cache file.

use std::time::Duration;

use iconv_serve::client::RetryPolicy;
use iconv_serve::protocol::{encode_estimate, encode_tuned_estimate};
use iconv_serve::router::{spawn_router, RouterConfig};
use iconv_serve::{
    spawn, Client, EstimateRequest, Response, ServerConfig, TpuChip, TuneTarget, Work,
    DEFAULT_CONNECT_TIMEOUT,
};
use iconv_tensor::ConvShape;

fn shapes() -> Vec<ConvShape> {
    vec![
        ConvShape::square(1, 16, 14, 16, 3, 1, 1).unwrap(),
        ConvShape::square(2, 32, 8, 24, 3, 1, 1).unwrap(),
        ConvShape::square(1, 8, 10, 8, 1, 1, 0).unwrap(),
    ]
}

fn targets() -> Vec<TuneTarget> {
    vec![
        TuneTarget::Tpu { chip: TpuChip::V2 },
        TuneTarget::Tpu { chip: TpuChip::V3 },
        TuneTarget::Gpu,
    ]
}

/// Replay every `(shape, target)` as a `tune` op plus a `"hw":"tuned"`
/// conv, returning raw response lines in request order.
fn replay_tunes(addr: &str, shapes: &[ConvShape], targets: &[TuneTarget]) -> Vec<String> {
    let mut c = Client::connect_retry(addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let mut out = Vec::new();
    for (i, shape) in shapes.iter().enumerate() {
        for (j, target) in targets.iter().enumerate() {
            let id = format!("t{i}-{j}");
            let line = encode_estimate(&EstimateRequest {
                id: Some(id),
                work: Work::Tune {
                    shape: *shape,
                    target: *target,
                },
                deadline_ms: None,
            });
            c.send_line(&line).expect("send");
            c.flush().expect("flush");
            out.push(c.recv_line().expect("recv"));
            let id = format!("e{i}-{j}");
            let line = encode_tuned_estimate(Some(&id), shape, target, None);
            c.send_line(&line).expect("send");
            c.flush().expect("flush");
            out.push(c.recv_line().expect("recv"));
        }
    }
    out
}

#[test]
fn tune_is_byte_identical_across_workers_shards_and_routed() {
    let shapes = shapes();
    let targets = targets();

    let mut reference: Option<Vec<String>> = None;
    for (workers, shards) in [(1usize, 1usize), (4, 0)] {
        let handle = spawn(ServerConfig {
            workers,
            cache_shards: shards,
            ..ServerConfig::default()
        })
        .expect("spawn server");
        let got = replay_tunes(&handle.local_addr().to_string(), &shapes, &targets);
        let stats = handle.shutdown();
        assert_eq!(
            stats.tunes,
            stats.tune_searches + stats.tune_cached,
            "{workers}w/{shards}s: tune ledger leaked"
        );
        // One search per distinct tune key: the tune op leads it, the
        // tuned conv replays the store.
        assert_eq!(stats.tune_searches, (shapes.len() * targets.len()) as u64);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "bytes changed at {workers}w/{shards}s"),
        }
    }
    let reference = reference.unwrap();

    // Through a routed fleet: same bytes, and tune affinity keeps each
    // key's search on one backend (fleet-wide searches == distinct keys).
    let backends: Vec<_> = (0..3)
        .map(|_| spawn(ServerConfig::default()).expect("spawn backend"))
        .collect();
    let router = spawn_router(RouterConfig {
        backends: backends
            .iter()
            .map(|h| h.local_addr().to_string())
            .collect(),
        breaker_threshold: 2,
        breaker_backoff: RetryPolicy {
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
            ..RetryPolicy::default()
        },
        health_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("spawn router");
    let got = replay_tunes(&router.local_addr().to_string(), &shapes, &targets);
    assert_eq!(got, reference, "routed fleet changed tune bytes");
    router.shutdown();
    let mut searches = 0;
    for b in backends {
        let stats = b.shutdown();
        assert_eq!(stats.tunes, stats.tune_searches + stats.tune_cached);
        searches += stats.tune_searches;
    }
    assert_eq!(searches, (shapes.len() * targets.len()) as u64);
}

#[test]
fn tuned_estimate_matches_the_concrete_work_it_denotes() {
    let shape = shapes()[0];
    let handle = spawn(ServerConfig::default()).expect("spawn server");
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    for target in targets() {
        let est = c.tune(&shape, target).expect("tune");
        assert!(
            est.tuned_cycles <= est.default_cycles,
            "{target:?}: tuned {} > default {}",
            est.tuned_cycles,
            est.default_cycles
        );
        // The tuned conv's bytes equal the concrete estimate's bytes for
        // the winning config, id for id.
        let concrete = encode_estimate(&EstimateRequest {
            id: Some("x".into()),
            work: est.best.to_work(shape),
            deadline_ms: None,
        });
        c.send_line(&concrete).expect("send");
        c.flush().expect("flush");
        let want = c.recv_line().expect("recv");
        let tuned = encode_tuned_estimate(Some("x"), &shape, &target, None);
        c.send_line(&tuned).expect("send");
        c.flush().expect("flush");
        assert_eq!(c.recv_line().expect("recv"), want, "{target:?}");
    }
    handle.shutdown();
}

#[test]
fn batch_framed_tunes_keep_the_ledger_conserved() {
    let shapes = shapes();
    let handle = spawn(ServerConfig::default()).expect("spawn server");
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");

    // A batch mixing tunes (with an intra-batch duplicate) and a plain
    // conv: the duplicate collapses onto one search and counts as cached.
    let works = vec![
        Work::Tune {
            shape: shapes[0],
            target: TuneTarget::Tpu { chip: TpuChip::V2 },
        },
        Work::TpuConv {
            shape: shapes[1],
            mode: iconv_tpusim::SimMode::ChannelFirst,
            hw: Default::default(),
        },
        Work::Tune {
            shape: shapes[0],
            target: TuneTarget::Tpu { chip: TpuChip::V2 },
        },
        Work::Tune {
            shape: shapes[1],
            target: TuneTarget::Gpu,
        },
    ];
    let results = c.batch(&works, None).expect("batch");
    assert_eq!(results.len(), works.len());
    for r in &results {
        assert!(r.is_ok(), "batch item failed: {r:?}");
    }
    // Replaying the same batch is all cached.
    let again = c.batch(&works, None).expect("batch again");
    assert_eq!(again.len(), works.len());

    let stats = handle.shutdown();
    assert_eq!(stats.tunes, stats.tune_searches + stats.tune_cached);
    assert_eq!(stats.tune_searches, 2, "two distinct tune keys");
    assert_eq!(stats.tunes, 6, "three tune items per batch, two batches");
    assert_eq!(
        stats.batch_hits + stats.batch_misses + stats.batch_errors,
        stats.batch_items
    );
}

#[test]
fn tune_cache_file_survives_restart_and_rejects_corruption() {
    let dir = std::env::temp_dir().join(format!("iconv-tune-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("tune_cache.json");
    let _ = std::fs::remove_file(&path);
    let shape = shapes()[0];
    let target = TuneTarget::Tpu { chip: TpuChip::V2 };

    // Boot 1: cold store, one search, saved on shutdown.
    let cfg = || ServerConfig {
        tune_cache_path: Some(path.clone()),
        ..ServerConfig::default()
    };
    let handle = spawn(cfg()).expect("spawn cold");
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let cold = c.tune(&shape, target).expect("tune");
    let stats = handle.shutdown();
    assert_eq!(stats.tune_searches, 1);
    assert!(path.exists(), "shutdown must persist the tune store");

    // Boot 2: warm store — same answer, zero searches, and the seeded
    // response cache makes the tune op itself a hit.
    let handle = spawn(cfg()).expect("spawn warm");
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let warm = c.tune(&shape, target).expect("warm tune");
    assert_eq!(warm, cold, "restart changed the tuned answer");
    let resp = c
        .call(&encode_tuned_estimate(Some("w"), &shape, &target, None))
        .expect("tuned conv");
    assert!(
        !matches!(resp, Response::Error { .. }),
        "tuned conv failed warm: {resp:?}"
    );
    let stats = handle.shutdown();
    assert_eq!(stats.tune_searches, 0, "warm boot must not re-search");
    assert_eq!(stats.tunes, stats.tune_cached);

    // Boot 3: corrupt file refuses boot instead of serving cold silently.
    std::fs::write(&path, "{\"version\":1,\"entries\":[garbage").expect("corrupt");
    match spawn(cfg()) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}"),
        Ok(_) => panic!("corrupt tune cache must refuse boot"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
