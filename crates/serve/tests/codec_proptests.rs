//! Property tests for the wire codec: encode → parse is the identity for
//! every representable request and response, and *no* input — malformed,
//! truncated, or mutated — ever panics the parser. Every failure is a typed
//! [`RequestError`]; the server's "malformed input never disconnects"
//! guarantee rests on exactly this.
//!
//! Runs under the offline `proptest` shim: deterministic seed, no
//! shrinking — a failing case prints its inputs via the assertion message.

use proptest::prelude::*;

use iconv_core::PipelineSchedule;
use iconv_gpusim::GpuAlgo;
use iconv_serve::protocol::{
    batch_summary_body, encode_batch, encode_estimate, encode_simple, encode_tuned_estimate,
    error_body, f64_bits, f64_from_bits, finish_item_response, finish_response, gpu_body,
    parse_request, parse_response, pong_body, shutdown_body, stats_body, tpu_body, tune_body,
    GpuEstimate, LatencyHist, StatsSnapshot, TpuEstimate, TuneEstimate, TuneTarget, TunedConfig,
};
use iconv_serve::{
    json, ErrorKind, EstimateRequest, GpuHwSpec, Request, Response, TpuChip, TpuHwSpec, Work,
};
use iconv_tensor::{ConvShape, Layout};
use iconv_tpusim::SimMode;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A valid conv shape: random dims pushed through the builder, rejecting
/// combinations where the dilated filter outgrows the padded input.
fn shape_strategy() -> impl proptest::strategy::Strategy<Value = ConvShape> {
    (
        (1usize..=8, 1usize..=128, 3usize..=40, 3usize..=40),
        (1usize..=256, 1usize..=7, 1usize..=7),
        (1usize..=3, 0usize..=3, 1usize..=2),
    )
        .prop_filter_map(
            "buildable shape",
            |((n, ci, hi, wi), (co, hf, wf), (s, p, d))| {
                ConvShape::new(n, ci, hi, wi, co, hf, wf)
                    .stride(s)
                    .pad(p)
                    .dilation(d)
                    .build()
                    .ok()
            },
        )
}

fn mode_strategy() -> impl proptest::strategy::Strategy<Value = SimMode> {
    (0u8..4, 1usize..=16).prop_map(|(tag, g)| match tag {
        0 => SimMode::ChannelFirst,
        1 => SimMode::Explicit,
        2 => SimMode::Indirect,
        _ => SimMode::ChannelFirstGrouped(g),
    })
}

/// Non-forward passes only: a `ConvPass::Forward` pass-variant normalizes
/// to the plain conv on the wire (by design), so it is not roundtrip-
/// identical and is covered by the unit tests instead.
fn pass_strategy() -> impl proptest::strategy::Strategy<Value = iconv_core::ConvPass> {
    prop::sample::select(vec![
        iconv_core::ConvPass::Wgrad,
        iconv_core::ConvPass::Dgrad,
        iconv_core::ConvPass::Transpose,
    ])
}

fn algo_strategy() -> impl proptest::strategy::Strategy<Value = GpuAlgo> {
    prop::sample::select(vec![
        GpuAlgo::CudnnImplicit,
        GpuAlgo::ChannelFirst { reuse: true },
        GpuAlgo::ChannelFirst { reuse: false },
        GpuAlgo::ExplicitIm2col,
        GpuAlgo::GemmEquivalent,
        GpuAlgo::Indirect,
    ])
}

fn hw_strategy() -> impl proptest::strategy::Strategy<Value = TpuHwSpec> {
    (
        0u8..2,
        (0usize..=4, 0usize..=3, 0usize..=2),
        0usize..=4,
        0usize..=2,
    )
        .prop_map(|(chip, (array, word, mxus), layout, sched)| TpuHwSpec {
            chip: if chip == 0 { TpuChip::V2 } else { TpuChip::V3 },
            array: [None, Some(64), Some(128), Some(256), Some(512)][array],
            word_elems: [None, Some(4), Some(8), Some(16)][word],
            mxus: [None, Some(1), Some(2)][mxus],
            layout: [
                None,
                Some(Layout::Hwcn),
                Some(Layout::Nhwc),
                Some(Layout::Nchw),
                Some(Layout::Chwn),
            ][layout],
            schedule: [
                None,
                Some(PipelineSchedule::SingleBuffered),
                Some(PipelineSchedule::DoubleBuffered),
            ][sched],
        })
}

/// Valid GPU hardware overrides (every combination here passes the
/// shared-memory validator `GpuHwSpec::resolve`, which parsing re-runs).
fn gpu_hw_strategy() -> impl proptest::strategy::Strategy<Value = GpuHwSpec> {
    (0usize..=2, 0usize..=2, 0usize..=2, 0usize..=1, 0usize..=2).prop_map(
        |(sms, clock, block, rpsm, sched)| GpuHwSpec {
            sms: [None, Some(40), Some(108)][sms],
            tc_macs: None,
            clock_mhz: [None, Some(1312.5), Some(940.0)][clock],
            block: [None, Some((64, 64, 32)), Some((128, 64, 32))][block],
            blocks_per_sm: [None, Some(1)][rpsm],
            schedule: [
                None,
                Some(PipelineSchedule::SingleBuffered),
                Some(PipelineSchedule::DoubleBuffered),
            ][sched],
        },
    )
}

fn target_strategy() -> impl proptest::strategy::Strategy<Value = TuneTarget> {
    prop::sample::select(vec![
        TuneTarget::Tpu { chip: TpuChip::V2 },
        TuneTarget::Tpu { chip: TpuChip::V3 },
        TuneTarget::Gpu,
    ])
}

/// Client ids with the characters that stress the string escaper: quotes,
/// backslashes, control chars, multibyte unicode, astral-plane codepoints.
fn id_strategy() -> impl proptest::strategy::Strategy<Value = Option<String>> {
    (0usize..=8, 0u64..u64::MAX).prop_map(|(len, seed)| {
        if len == 0 {
            return None;
        }
        const ALPHABET: [char; 16] = [
            'a', 'Z', '0', '-', '_', '"', '\\', '/', '\n', '\t', '\u{0}', '\u{7f}', 'é', 'λ', '軸',
            '𝄞',
        ];
        let mut s = String::new();
        let mut x = seed;
        for _ in 0..len {
            s.push(ALPHABET[(x % ALPHABET.len() as u64) as usize]);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        Some(s)
    })
}

fn work_strategy() -> impl proptest::strategy::Strategy<Value = Work> {
    (
        0u8..6,
        shape_strategy(),
        (
            mode_strategy(),
            algo_strategy(),
            target_strategy(),
            pass_strategy(),
        ),
        (hw_strategy(), gpu_hw_strategy()),
        (1usize..5000, 1usize..5000, 1usize..5000),
    )
        .prop_map(
            |(tag, shape, (mode, algo, target, pass), (hw, ghw), (m, n, k))| match tag {
                0 => Work::TpuConv { shape, mode, hw },
                1 => Work::TpuGemm { m, n, k, hw },
                2 => Work::GpuConv {
                    shape,
                    algo,
                    hw: ghw,
                },
                3 => Work::TpuPass {
                    shape,
                    pass,
                    mode,
                    hw,
                },
                4 => Work::GpuPass {
                    shape,
                    pass,
                    algo,
                    hw: ghw,
                },
                _ => Work::Tune { shape, target },
            },
        )
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode_estimate → parse_request is the identity on the full request
    /// space, including ids that need heavy escaping.
    #[test]
    fn estimate_roundtrip(work in work_strategy(), id in id_strategy(), dl in 0u64..=3) {
        let req = EstimateRequest {
            id: id.clone(),
            work,
            deadline_ms: [None, Some(0), Some(50), Some(u64::MAX / 1000)][dl as usize],
        };
        let line = encode_estimate(&req);
        match parse_request(&line) {
            Ok(Request::Estimate(back)) => prop_assert_eq!(back, req, "line {}", line),
            other => panic!("{line} did not parse back as an estimate: {other:?}"),
        }
    }

    /// Control ops round-trip with their ids intact.
    #[test]
    fn simple_op_roundtrip(op in prop::sample::select(vec!["stats", "ping", "shutdown"]),
                           id in id_strategy()) {
        let line = encode_simple(op, id.as_deref());
        let back = parse_request(&line).expect("control op must parse");
        let got_id = match &back {
            Request::Stats { id } | Request::Ping { id } | Request::Shutdown { id } => id.clone(),
            other => panic!("{line} parsed as {other:?}"),
        };
        prop_assert_eq!(got_id, id);
    }

    /// TPU estimate bodies survive finish_response → parse_response.
    #[test]
    fn tpu_response_roundtrip(v in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
                              w in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
                              x in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
                              id in id_strategy()) {
        let est = TpuEstimate {
            cycles: v.0, compute_cycles: v.1, exposed_memory_cycles: v.2,
            dram_bytes: w.0, workspace_bytes: w.1, flops: w.2,
            dispatch: x.0, first_fill: x.1, steady: x.2,
        };
        let line = finish_response(id.as_deref(), &tpu_body(&est));
        match parse_response(&line) {
            Ok(Response::Tpu { id: got, est: back }) => {
                prop_assert_eq!(got, id);
                prop_assert_eq!(back, est);
            }
            other => panic!("{line} did not parse back: {other:?}"),
        }
    }

    /// GPU estimate bodies are *bit*-exact through the wire, for any f64
    /// bit pattern — infinities and NaN payloads included (this is the
    /// property `expall --via-serve` byte-identity rests on).
    #[test]
    fn gpu_response_roundtrip_bitexact(bits in (0u64..u64::MAX, 0u64..u64::MAX,
                                                0u64..u64::MAX, 0u64..u64::MAX),
                                       ints in (0u64..u64::MAX, 0u64..u64::MAX),
                                       id in id_strategy()) {
        let est = GpuEstimate {
            cycles: f64::from_bits(bits.0),
            compute_cycles: f64::from_bits(bits.1),
            memory_cycles: f64::from_bits(bits.2),
            transform_cycles: f64::from_bits(bits.3),
            blocks: ints.0,
            flops: ints.1,
        };
        let line = finish_response(id.as_deref(), &gpu_body(&est));
        match parse_response(&line) {
            Ok(Response::Gpu { id: got, est: back }) => {
                prop_assert_eq!(got, id);
                // NaN != NaN, so compare representations, not values.
                prop_assert_eq!(back.cycles.to_bits(), bits.0);
                prop_assert_eq!(back.compute_cycles.to_bits(), bits.1);
                prop_assert_eq!(back.memory_cycles.to_bits(), bits.2);
                prop_assert_eq!(back.transform_cycles.to_bits(), bits.3);
                prop_assert_eq!((back.blocks, back.flops), ints);
            }
            other => panic!("{line} did not parse back: {other:?}"),
        }
    }

    /// encode_batch → parse_request is the identity on arbitrary item
    /// vectors, and the batch summary/item framing round-trips.
    #[test]
    fn batch_roundtrip(w1 in work_strategy(), w2 in work_strategy(), w3 in work_strategy(),
                       len in 1usize..=3,
                       id in id_strategy(), dl in 0u64..=2,
                       counts in (0u64..1 << 40, 0u64..1 << 40)) {
        let mut works = vec![w1, w2, w3];
        works.truncate(len);
        let deadline_ms = [None, Some(1), Some(2500)][dl as usize];
        let line = encode_batch(id.as_deref(), &works, deadline_ms);
        match parse_request(&line) {
            Ok(Request::Batch { id: got, items, deadline_ms: got_dl }) => {
                prop_assert_eq!(got, id.clone());
                prop_assert_eq!(items, works.clone());
                prop_assert_eq!(got_dl, deadline_ms);
            }
            other => panic!("{line} did not parse back as a batch: {other:?}"),
        }
        let line = finish_response(id.as_deref(), &batch_summary_body(counts.0, counts.1));
        match parse_response(&line) {
            Ok(Response::Batch { id: got, items, errors }) => {
                prop_assert_eq!(got, id.clone());
                prop_assert_eq!((items, errors), counts);
            }
            other => panic!("{line} did not parse back as a summary: {other:?}"),
        }
        // An item line is the underlying estimate line plus the item tag.
        let est = TpuEstimate { cycles: counts.0, ..TpuEstimate::default() };
        let line = finish_item_response(id.as_deref(), 7, &tpu_body(&est));
        match parse_response(&line) {
            Ok(Response::Tpu { id: got, est: back }) => {
                prop_assert_eq!(got, id.clone());
                prop_assert_eq!(back, est);
            }
            other => panic!("{line} did not parse back as an item: {other:?}"),
        }
    }

    /// `tune` responses are bit-exact through the wire for any cycle bit
    /// pattern, and the winning config survives re-parsing; the
    /// `"hw":"tuned"` conv framing parses back to its fields.
    #[test]
    fn tune_response_and_tuned_framing_roundtrip(
        shape in shape_strategy(),
        target in target_strategy(),
        mode in mode_strategy(),
        hw in hw_strategy(),
        algo in algo_strategy(),
        ghw in gpu_hw_strategy(),
        bits in (0u64..u64::MAX, 0u64..u64::MAX),
        counts in (0u64..500, 0u64..500),
        id in id_strategy(),
        dl in 0u64..=2,
    ) {
        let best = match target {
            TuneTarget::Tpu { .. } => TunedConfig::Tpu { mode, hw },
            TuneTarget::Gpu => TunedConfig::Gpu { algo, hw: ghw },
        };
        // Cycle counts are always finite in practice (NaN/inf have no JSON
        // decimal rendering); keep the full mantissa/sign space.
        let finite = |bits: u64| {
            let v = f64::from_bits(bits);
            if v.is_finite() { v } else { f64::from_bits(bits & !(0x7ff0u64 << 48)) }
        };
        let est = TuneEstimate {
            best,
            tuned_cycles: finite(bits.0),
            default_cycles: finite(bits.1),
            candidates: counts.0,
            pruned: counts.1,
        };
        let line = finish_response(id.as_deref(), &tune_body(&est));
        match parse_response(&line) {
            Ok(Response::Tune { id: got, est: back }) => {
                prop_assert_eq!(got, id.clone());
                prop_assert_eq!(back.best, est.best);
                prop_assert_eq!(back.tuned_cycles.to_bits(), est.tuned_cycles.to_bits());
                prop_assert_eq!(back.default_cycles.to_bits(), est.default_cycles.to_bits());
                prop_assert_eq!((back.candidates, back.pruned), counts);
            }
            other => panic!("{line} did not parse back: {other:?}"),
        }

        let deadline_ms = [None, Some(5), Some(9000)][dl as usize];
        let line = encode_tuned_estimate(id.as_deref(), &shape, &target, deadline_ms);
        match parse_request(&line) {
            Ok(Request::TunedEstimate { id: got, shape: s, target: t, deadline_ms: d }) => {
                prop_assert_eq!(got, id.clone());
                prop_assert_eq!(s, shape);
                prop_assert_eq!(t, target);
                prop_assert_eq!(d, deadline_ms);
            }
            other => panic!("{line} did not parse back as tuned conv: {other:?}"),
        }
    }

    /// f64 bit transport is the identity on raw bit patterns.
    #[test]
    fn f64_bits_roundtrip(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        prop_assert_eq!(f64_from_bits(&f64_bits(v)).map(f64::to_bits), Some(bits));
    }

    /// Stats and error bodies round-trip; pong/shutdown parse back to their
    /// variants.
    #[test]
    fn control_response_roundtrip(vals in (0u64..1 << 50, 0u64..1 << 50, 0u64..1 << 50),
                                  kind_ix in 0usize..6,
                                  detail in id_strategy(),
                                  id in id_strategy()) {
        let stats = StatsSnapshot {
            requests: vals.0 + vals.1,
            hits: vals.0,
            misses: vals.1,
            evictions: vals.2,
            cache_entries: vals.0 % 97,
            cache_capacity: 16384,
            queue_depth: vals.1 % 13,
            in_flight: vals.2 % 7,
            busy_rejections: vals.0 % 5,
            deadline_expired: vals.1 % 3,
            parse_errors: vals.2 % 11,
            latency_us_total: vals.0,
            latency_us_max: vals.1,
            workers: 1 + vals.2 % 8,
            batches: vals.0 % 17,
            batch_items: vals.1 % 19,
            batch_hits: vals.2 % 23,
            batch_misses: vals.0 % 29,
            batch_errors: vals.1 % 31,
            worker_crashes: vals.2 % 37,
            faults_injected: vals.0 % 41,
            faults_observed: vals.0 % 41,
            tunes: (vals.1 % 43) + (vals.2 % 47),
            tune_searches: vals.1 % 43,
            tune_cached: vals.2 % 47,
            service_hist: {
                // A deterministic non-trivial histogram exercises the sparse
                // bucket encoding on the wire, including the empty case.
                let mut h = LatencyHist::new();
                for k in 0..vals.2 % 9 {
                    h.record(vals.0.wrapping_mul(k + 1) % (1 << 40));
                }
                h
            },
        };
        let line = finish_response(id.as_deref(), &stats_body(&stats));
        match parse_response(&line) {
            Ok(Response::Stats { id: got, stats: back }) => {
                prop_assert_eq!(got, id.clone());
                prop_assert_eq!(back, stats);
            }
            other => panic!("{line} did not parse back: {other:?}"),
        }

        let kind = [
            ErrorKind::Busy,
            ErrorKind::Deadline,
            ErrorKind::Parse,
            ErrorKind::BadRequest,
            ErrorKind::ShuttingDown,
            ErrorKind::WorkerCrashed,
        ][kind_ix];
        let detail = detail.unwrap_or_default();
        let line = finish_response(id.as_deref(), &error_body(kind, &detail));
        match parse_response(&line) {
            Ok(Response::Error { id: got, kind: k, detail: d }) => {
                prop_assert_eq!(got, id.clone());
                prop_assert_eq!(k, kind);
                prop_assert_eq!(d, detail);
            }
            other => panic!("{line} did not parse back: {other:?}"),
        }

        for (body, want_pong) in [(pong_body(), true), (shutdown_body(), false)] {
            let line = finish_response(id.as_deref(), &body);
            match (parse_response(&line), want_pong) {
                (Ok(Response::Pong { id: got }), true)
                | (Ok(Response::ShutdownAck { id: got }), false) => {
                    prop_assert_eq!(got, id.clone());
                }
                (other, _) => panic!("{line} did not parse back: {other:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed-input fuzzing: typed errors, never panics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Random byte soup: the parser must return (a typed error or, for the
    /// astronomically unlikely valid line, a request) without panicking.
    #[test]
    fn random_bytes_never_panic(len in 0usize..64, seed in 0u64..u64::MAX) {
        let mut bytes = Vec::with_capacity(len);
        let mut x = seed | 1;
        for _ in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bytes.push((x & 0xff) as u8);
        }
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&line);
        let _ = parse_response(&line);
        let _ = json::parse(&line);
    }

    /// JSON-looking garbage assembled from structural tokens: deep nesting,
    /// dangling commas, unterminated strings. Typed errors only.
    #[test]
    fn token_soup_never_panics(len in 0usize..48, seed in 0u64..u64::MAX) {
        const TOKENS: [&str; 14] = [
            "{", "}", "[", "]", ":", ",", "\"", "\\", "null", "true", "1e999",
            "\"op\"", "\"conv\"", "-",
        ];
        let mut s = String::new();
        let mut x = seed | 1;
        for _ in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.push_str(TOKENS[(x % TOKENS.len() as u64) as usize]);
        }
        let _ = parse_request(&s);
        let _ = parse_response(&s);
    }

    /// Every proper prefix of a valid request line is a Parse error (and
    /// carries no panic): truncation mid-stream can never take the server
    /// down or be mistaken for a request.
    #[test]
    fn truncations_are_parse_errors(work in work_strategy(), cut in 0usize..10_000) {
        let line = encode_estimate(&EstimateRequest { id: Some("t".into()), work, deadline_ms: None });
        let mut cut = cut % line.len();
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut == 0 {
            // Empty input is still a typed parse error.
            let err = parse_request("").expect_err("empty line must not parse");
            prop_assert_eq!(err.kind, ErrorKind::Parse);
        } else {
            let err = parse_request(&line[..cut]).expect_err("proper prefix must not parse");
            prop_assert_eq!(err.kind, ErrorKind::Parse);
        }
    }

    /// Single-byte corruption of a valid line: typed error or a different
    /// valid parse — never a panic, and never a misattributed id when the
    /// id bytes were untouched.
    #[test]
    fn mutations_never_panic(work in work_strategy(), pos in 0usize..10_000, b in 0u8..=255) {
        let line = encode_estimate(&EstimateRequest { id: None, work, deadline_ms: None });
        let mut bytes = line.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = b;
        let mutated = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&mutated);
    }

    /// Well-formed JSON that is not a valid request gets `bad-request` (not
    /// `parse`), with the id salvaged for addressing the error response.
    #[test]
    fn wrong_shape_json_is_bad_request(n in 0u64..1000) {
        for line in [
            format!("{{\"id\":\"x{n}\",\"op\":\"warp\"}}"),
            format!("{{\"id\":\"x{n}\",\"op\":\"conv\"}}"),
            format!("{{\"id\":\"x{n}\",\"op\":\"conv\",\"target\":\"tpu\",\"layer\":{{\"n\":{n}}}}}"),
            format!("{{\"id\":\"x{n}\",\"op\":\"gemm\",\"m\":1,\"n\":2}}"),
            format!("{{\"id\":\"x{n}\"}}"),
            format!("[{n}]"),
            format!("{n}"),
        ] {
            let err = parse_request(&line).expect_err("not a valid request");
            prop_assert_eq!(err.kind, ErrorKind::BadRequest, "line {}", line);
            if line.starts_with("{\"id\"") {
                prop_assert_eq!(err.id.as_deref(), Some(format!("x{n}").as_str()),
                    "id must be salvaged from {}", line);
            }
        }
    }
}
