//! Single-flight regression: two connections missing the same key at the
//! same time must run **one** simulation — the second caller joins the
//! first's flight and is counted as a hit. Before single-flight, this
//! exact shape (a popular key arriving on N connections while cold)
//! simulated N times and counted N misses: the thundering-herd form of
//! the cache-lock bottleneck.
//!
//! The race is made deterministic with a runway: a single-worker server
//! is first loaded with a large batch of *distinct* heavy layers on a
//! third connection, so the racing key's leader job sits in the queue —
//! still in flight — while the second connection admits and joins.

use iconv_api::table::workload_works;
use iconv_serve::protocol::{encode_batch, encode_estimate};
use iconv_serve::{spawn, Client, EstimateRequest, ServerConfig, Work, DEFAULT_CONNECT_TIMEOUT};
use iconv_tensor::ConvShape;
use iconv_tpusim::SimMode;

/// The racing request: a layer that is *not* in the workload table, so
/// the runway batch can never have cached it.
fn racing_work() -> Work {
    let shape = ConvShape::new(1, 96, 31, 31, 96, 3, 3)
        .stride(1)
        .pad(1)
        .build()
        .expect("buildable shape");
    Work::TpuConv {
        shape,
        mode: SimMode::ChannelFirst,
        hw: iconv_serve::TpuHwSpec::default(),
    }
}

#[test]
fn concurrent_misses_of_one_key_simulate_once() {
    let handle = spawn(ServerConfig {
        workers: 1,
        cache_capacity: 4096,
        ..ServerConfig::default()
    })
    .expect("spawn serve");
    let addr = handle.local_addr().to_string();

    // Runway: every distinct layer of the paper's workload table (deduped
    // by canonical key, so each is exactly one miss), pipelined as one
    // batch and left unread. The single worker grinds through these while
    // the race below happens at connection-handler speed.
    let mut seen = std::collections::HashSet::new();
    let runway: Vec<Work> = workload_works(false)
        .into_iter()
        .filter(|w| seen.insert(iconv_serve::canonical_key(w)))
        .collect();
    assert!(runway.len() >= 32, "runway too short to be convincing");
    let mut loader = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    loader
        .send_line(&encode_batch(None, &runway, None))
        .expect("send runway");
    loader.flush().expect("flush runway");

    // The race: the same uncached key from two connections. Connection A's
    // handler admits as leader and queues the job behind the runway;
    // connection B's handler then finds the flight open and joins it.
    let line = encode_estimate(&EstimateRequest {
        id: None,
        work: racing_work(),
        deadline_ms: None,
    });
    let mut a = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let mut b = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    a.send_line(&line).expect("send a");
    a.flush().expect("flush a");
    b.send_line(&line).expect("send b");
    b.flush().expect("flush b");

    let ra = a.recv_line().expect("a answered");
    let rb = b.recv_line().expect("b answered");
    assert_eq!(ra, rb, "joiner must read the leader's exact bytes");
    assert!(ra.contains("\"ok\":true"), "the race must succeed: {ra}");

    // Drain the runway so shutdown sees a quiet server.
    for _ in 0..=runway.len() {
        loader.recv_line().expect("runway item");
    }

    let stats = handle.shutdown();
    // The runway's layers are distinct so each is a miss; the racing key
    // must add exactly ONE more miss (the leader) and ONE hit (the joiner).
    // Without single-flight this reads misses == runway + 2, hits == 0.
    let runway_n = runway.len() as u64;
    assert_eq!(
        stats.misses,
        runway_n + 1,
        "exactly one simulation for the racing key"
    );
    assert_eq!(stats.hits, 1, "the second caller counts as a hit");
    assert_eq!(
        stats.requests,
        runway_n + 2,
        "2 estimate requests + {runway_n} batch items served"
    );
    assert_eq!(
        stats.hits + stats.misses,
        stats.requests,
        "every served request hit or missed — the ledger is conserved"
    );
}
