//! The coordinated-omission regression test: a scripted transport stall
//! must show up in the intended-time histogram and must NOT show up in
//! the naive (actual-send-time) histogram.
//!
//! The scenario: a 1000 req/s open-loop schedule against a virtual
//! serial server that answers in 100µs — except entry #700, which stalls
//! for 500ms. Every request scheduled during the stall queues behind it.
//!
//! * Stamped from *intended* send time, those queued requests are charged
//!   their full wait: the p99 blows past 400ms.
//! * Stamped from *actual* send time (the naive, coordinated-omission
//!   mistake: the clock starts only when the blocked transport finally
//!   writes), each queued request looks like a quick 100µs hop — the p99
//!   stays in the microsecond range and the stall is invisible.
//!
//! Both percentiles are pinned exactly: the virtual clock, the schedule,
//! and the histogram are all deterministic, so any drift in bucket
//! layout, quantile policy, or schedule math fails this test loudly.

use iconv_api::table::workload_works;
use iconv_serve::capacity::{build_schedule, replay_virtual, Entry, OpenLoopSpec};

const RATE: u64 = 1000;
const REQUESTS: usize = 2000;
/// Service time for every unremarkable entry: 100µs.
const FAST_NS: u64 = 100_000;
/// The scripted stall at entry #700: 500ms, i.e. 500 schedule ticks.
const STALL_AT: u64 = 700;
const STALL_NS: u64 = 500_000_000;

fn stalled_replay() -> (iconv_api::LatencyHist, iconv_api::LatencyHist) {
    let spec = OpenLoopSpec {
        rate_rps: RATE,
        requests: REQUESTS,
        seed: 7,
        ..OpenLoopSpec::default()
    };
    let schedule = build_schedule(&spec, &workload_works(true));
    let mut model = |e: &Entry| -> u64 {
        if e.index == STALL_AT {
            STALL_NS
        } else {
            FAST_NS
        }
    };
    replay_virtual(&schedule, &mut model)
}

#[test]
fn intended_time_p99_sees_the_stall_and_naive_does_not() {
    let (intended, naive) = stalled_replay();
    assert_eq!(intended.count(), REQUESTS as u64);
    assert_eq!(naive.count(), REQUESTS as u64);

    let intended_p99 = intended.value_at_quantile(0.99);
    let naive_p99 = naive.value_at_quantile(0.99);

    // Sanity bands first, so a failure explains itself.
    assert!(
        intended_p99 >= 400_000,
        "intended p99 {intended_p99}us must reflect the 500ms stall"
    );
    assert!(
        naive_p99 <= 200,
        "naive p99 {naive_p99}us must hide the stall — that is the bug \
         this measurement style has"
    );

    // Exact pins: the replay is fully deterministic.
    assert_eq!(intended_p99, 483_327, "intended-time p99 drifted");
    // 101, not 100: the estimate is the upper bound of the [100, 101]
    // bucket, and the stalled entry itself keeps `max` from clamping it.
    assert_eq!(naive_p99, 101, "naive p99 drifted");
    assert_eq!(
        naive.max(),
        STALL_NS / 1000,
        "only the stalled entry itself is slow naively"
    );
    assert_eq!(
        intended.min(),
        FAST_NS / 1000,
        "pre-stall entries see pure service time"
    );
}

/// With no stall, the two stamping policies agree (the open-loop sender
/// is never behind schedule on a virtual clock), pinning that the
/// histograms only diverge when there is real queueing to report.
#[test]
fn without_a_stall_the_policies_agree() {
    let spec = OpenLoopSpec {
        rate_rps: RATE,
        requests: REQUESTS,
        seed: 7,
        ..OpenLoopSpec::default()
    };
    let schedule = build_schedule(&spec, &workload_works(true));
    let mut model = |_: &Entry| -> u64 { FAST_NS };
    let (intended, naive) = replay_virtual(&schedule, &mut model);
    assert_eq!(intended, naive, "no queueing -> identical histograms");
    assert_eq!(intended.value_at_quantile(0.99), 100);
}
