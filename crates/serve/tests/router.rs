//! Router end-to-end: a `routed` front-end over a fleet of in-process
//! `served` backends must be observationally identical to one big server —
//! byte-identical responses for estimates and batches, a merged `stats`
//! ledger, renumbered fleet-wide `shards` — and must keep answering
//! (by failing over along the ring) when a backend dies mid-run.

use std::collections::HashSet;
use std::time::Duration;

use iconv_api::table::workload_works;
use iconv_serve::client::RetryPolicy;
use iconv_serve::protocol::{encode_batch, encode_estimate, encode_simple};
use iconv_serve::router::{spawn_router, RouterConfig, RouterHandle};
use iconv_serve::{
    spawn, Client, EstimateRequest, Response, ServerConfig, ServerHandle, Work,
    DEFAULT_CONNECT_TIMEOUT,
};

fn fleet(n: usize) -> (Vec<ServerHandle>, RouterHandle) {
    let backends: Vec<ServerHandle> = (0..n)
        .map(|_| spawn(ServerConfig::default()).expect("spawn backend"))
        .collect();
    let router = spawn_router(RouterConfig {
        backends: backends
            .iter()
            .map(|h| h.local_addr().to_string())
            .collect(),
        breaker_threshold: 2,
        breaker_backoff: RetryPolicy {
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
            ..RetryPolicy::default()
        },
        health_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("spawn router");
    (backends, router)
}

/// The paper workload, deduped by canonical key and truncated — enough
/// keys to land on every backend, small enough to keep the test quick.
fn works(n: usize) -> Vec<Work> {
    let mut seen = HashSet::new();
    workload_works(true)
        .into_iter()
        .filter(|w| seen.insert(iconv_serve::canonical_key(w)))
        .take(n)
        .collect()
}

/// Replay `works` as id-tagged estimates on one connection, returning the
/// raw response lines.
fn replay_estimates(addr: &str, works: &[Work]) -> Vec<String> {
    let mut c = Client::connect_retry(addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    works
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let line = encode_estimate(&EstimateRequest {
                id: Some(format!("req-{i}")),
                work: *w,
                deadline_ms: None,
            });
            c.send_line(&line).expect("send");
            c.flush().expect("flush");
            c.recv_line().expect("recv")
        })
        .collect()
}

/// Replay `works` as one id-tagged batch, returning every line (items in
/// order plus the summary).
fn replay_batch(addr: &str, works: &[Work]) -> Vec<String> {
    let mut c = Client::connect_retry(addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    c.send_line(&encode_batch(Some("b-1"), works, None))
        .expect("send");
    c.flush().expect("flush");
    (0..=works.len())
        .map(|_| c.recv_line().expect("recv"))
        .collect()
}

#[test]
fn routed_fleet_is_byte_identical_to_one_server() {
    let works = works(40);

    // Reference: one plain server, straight replay.
    let reference = spawn(ServerConfig::default()).expect("spawn reference");
    let ref_addr = reference.local_addr().to_string();
    let want_est = replay_estimates(&ref_addr, &works);
    let want_batch = replay_batch(&ref_addr, &works);
    reference.shutdown();

    // Via the router over 3 backends: same bytes, estimate and batch.
    let (backends, router) = fleet(3);
    let addr = router.local_addr().to_string();
    assert_eq!(replay_estimates(&addr, &works), want_est);
    assert_eq!(replay_batch(&addr, &works), want_batch);

    // A batch of duplicated keys dedups per backend and still reassembles
    // in client order (every response identical per duplicated key).
    let dup: Vec<Work> = works
        .iter()
        .cycle()
        .take(works.len() * 2)
        .copied()
        .collect();
    let dup_lines = replay_batch(&addr, &dup);
    let ref2 = spawn(ServerConfig::default()).expect("spawn reference");
    let want_dup = replay_batch(&ref2.local_addr().to_string(), &dup);
    ref2.shutdown();
    assert_eq!(dup_lines, want_dup);

    // Every backend saw some share of the keys: affinity spreads the
    // space, it does not funnel everything to one backend.
    let stats = router.stats();
    assert!(stats.forwarded > 0);
    assert_eq!(stats.failovers, 0, "healthy fleet never fails over");
    assert_eq!(stats.unrouted, 0);
    let mut touched = 0;
    for b in &backends {
        let mut c = Client::connect_retry(&b.local_addr().to_string(), DEFAULT_CONNECT_TIMEOUT)
            .expect("connect backend");
        let s = c.stats().expect("backend stats");
        if s.requests > 0 {
            touched += 1;
        }
    }
    assert_eq!(touched, 3, "all 3 backends took traffic");

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn stats_and_shards_aggregate_the_fleet() {
    let works = works(24);
    let (backends, router) = fleet(3);
    let addr = router.local_addr().to_string();
    let _ = replay_estimates(&addr, &works);
    let _ = replay_estimates(&addr, &works); // warm pass: all hits

    let mut c = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let merged = c.stats().expect("merged stats");
    assert_eq!(merged.requests, works.len() as u64 * 2);
    assert_eq!(
        merged.misses,
        works.len() as u64,
        "cold pass missed once each"
    );
    assert_eq!(merged.hits, works.len() as u64, "warm pass all hits");
    assert_eq!(merged.hits + merged.misses, merged.requests);

    // The fleet's shards concatenate with sequential ids, and their
    // hit/miss sums equal the merged globals (per-shard sum == global,
    // across processes).
    let shards = c.shards().expect("fleet shards");
    let per_backend = iconv_serve::StripedCache::DEFAULT_SHARDS;
    assert_eq!(shards.len(), per_backend * backends.len());
    for (k, s) in shards.iter().enumerate() {
        assert_eq!(s.shard, k as u64, "renumbered sequentially");
    }
    let shard_hits: u64 = shards.iter().map(|s| s.hits).sum();
    let shard_misses: u64 = shards.iter().map(|s| s.misses).sum();
    assert_eq!(shard_hits, merged.hits);
    assert_eq!(shard_misses, merged.misses);

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn losing_a_backend_fails_over_and_keeps_answers_identical() {
    let works = works(30);

    let reference = spawn(ServerConfig::default()).expect("spawn reference");
    let want = replay_estimates(&reference.local_addr().to_string(), &works);
    reference.shutdown();

    let (mut backends, router) = fleet(3);
    let addr = router.local_addr().to_string();
    assert_eq!(replay_estimates(&addr, &works), want, "healthy fleet");

    // Kill one backend mid-run: its keys re-route along the ring; the
    // answers must not change by a byte (the survivors re-simulate cold).
    backends.remove(1).shutdown();
    assert_eq!(replay_estimates(&addr, &works), want, "degraded fleet");
    let stats = router.stats();
    assert!(
        stats.failovers > 0,
        "the dead backend's keys re-routed: {stats:?}"
    );
    assert_eq!(stats.unrouted, 0, "no request went unanswered");

    // The whole fleet down: the router answers with a typed busy error
    // instead of hanging or disconnecting.
    for b in backends.drain(..) {
        b.shutdown();
    }
    // Let the health loop trip the remaining breakers so the error path is
    // fast and deterministic.
    std::thread::sleep(Duration::from_millis(300));
    let mut c = Client::connect_retry(&addr, DEFAULT_CONNECT_TIMEOUT).expect("connect");
    let line = encode_estimate(&EstimateRequest {
        id: Some("orphan".to_owned()),
        work: works[0],
        deadline_ms: None,
    });
    match c.call(&line) {
        Ok(Response::Error { kind, .. }) => {
            assert_eq!(
                kind,
                iconv_serve::ErrorKind::Busy,
                "typed, retryable refusal"
            );
        }
        other => panic!("expected a busy error with no backends, got {other:?}"),
    }
    // Local ops still answer.
    let pong = c.call(&encode_simple("ping", Some("p"))).expect("ping");
    assert!(matches!(pong, Response::Pong { .. }));

    router.shutdown();
}
