//! Scripted fault-injection tests: each test arms a hand-written
//! [`FaultPoint`] that fires a *specific* injection at a *specific*
//! consultation, then pins exactly how the server contains it — typed
//! errors instead of hangs, per-connection blast radius, conserved
//! counters, and byte-identical service for everyone else.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use iconv_faults::{FaultCounters, FaultPlan, FaultPoint, FaultSite, Injection, N_SITES};
use iconv_serve::protocol::{self, ErrorKind, Response};
use iconv_serve::{spawn, ServerConfig};

/// A deterministic test double: per-site queues of scripted decisions,
/// consumed one per consultation (`None` = let this one pass; an empty
/// queue passes everything).
#[derive(Debug, Default)]
struct Scripted {
    queues: Mutex<[VecDeque<Option<Injection>>; N_SITES]>,
    injected: [AtomicU64; N_SITES],
    observed: [AtomicU64; N_SITES],
}

impl Scripted {
    fn armed(script: &[(FaultSite, &[Option<Injection>])]) -> Arc<Self> {
        let s = Scripted::default();
        {
            let mut queues = s.queues.lock().unwrap();
            for (site, decisions) in script {
                queues[site.index()].extend(decisions.iter().copied());
            }
        }
        Arc::new(s)
    }

    fn counters_snapshot(&self) -> FaultCounters {
        FaultCounters {
            injected: std::array::from_fn(|i| self.injected[i].load(Ordering::Relaxed)),
            observed: std::array::from_fn(|i| self.observed[i].load(Ordering::Relaxed)),
        }
    }
}

impl FaultPoint for Scripted {
    fn decide(&self, site: FaultSite) -> Option<Injection> {
        let decision = self.queues.lock().unwrap()[site.index()]
            .pop_front()
            .flatten();
        if decision.is_some() {
            self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    fn observe(&self, site: FaultSite) {
        self.observed[site.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn counters(&self) -> FaultCounters {
        self.counters_snapshot()
    }
}

fn spawn_with(faults: Arc<dyn FaultPoint>) -> iconv_serve::server::ServerHandle {
    spawn(ServerConfig {
        workers: 2,
        faults: Some(faults),
        ..ServerConfig::default()
    })
    .expect("spawn faulted server")
}

struct Lockstep {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Lockstep {
    fn connect(addr: std::net::SocketAddr) -> Lockstep {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Lockstep { stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
    }

    fn recv(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    fn call(&mut self, line: &str) -> String {
        self.send(line);
        self.recv().expect("response")
    }
}

const GEMM: &str = r#"{"op":"gemm","m":96,"n":96,"k":96}"#;

/// An injected worker panic becomes a typed `worker-crashed` response on
/// the same still-usable connection; the pool respawns, the request is
/// excluded from the hit/miss ledger, and a retry of the identical
/// request succeeds.
#[test]
fn worker_panic_yields_typed_error_and_connection_survives() {
    let faults = Scripted::armed(&[(FaultSite::WorkerPanic, &[Some(Injection::WorkerPanic)])]);
    let h = spawn_with(Arc::clone(&faults) as Arc<dyn FaultPoint>);
    let mut c = Lockstep::connect(h.local_addr());

    let crashed = c.call(GEMM);
    assert!(
        crashed.contains("\"error\":\"worker-crashed\""),
        "{crashed}"
    );
    let retried = c.call(GEMM);
    assert!(retried.contains("\"ok\":true"), "{retried}");

    let stats = h.shutdown();
    assert_eq!(stats.worker_crashes, 1);
    assert_eq!(stats.requests, 1, "the crashed attempt must not be served");
    assert_eq!(stats.hits + stats.misses, stats.requests);
    assert!(faults.counters().conserved());
}

/// A deadline storm expires a request that never asked for a deadline —
/// the client sees the same typed `deadline` error a queue timeout would
/// produce, and the deadline counter picks it up.
#[test]
fn deadline_storm_fires_without_a_client_deadline() {
    let faults = Scripted::armed(&[(FaultSite::DeadlineStorm, &[Some(Injection::DeadlineStorm)])]);
    let h = spawn_with(Arc::clone(&faults) as Arc<dyn FaultPoint>);
    let mut c = Lockstep::connect(h.local_addr());

    let stormed = c.call(GEMM);
    assert!(stormed.contains("\"error\":\"deadline\""), "{stormed}");
    let retried = c.call(GEMM);
    assert!(retried.contains("\"ok\":true"), "{retried}");

    let stats = h.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    assert!(faults.counters().conserved());
}

/// A slow-loris delay stalls the response but corrupts nothing: the line
/// arrives late and byte-correct.
#[test]
fn delay_injection_stalls_but_delivers() {
    let faults = Scripted::armed(&[(FaultSite::Delay, &[Some(Injection::Delay { ms: 80 })])]);
    let h = spawn_with(Arc::clone(&faults) as Arc<dyn FaultPoint>);
    let mut c = Lockstep::connect(h.local_addr());

    let t0 = Instant::now();
    let slow = c.call(GEMM);
    assert!(t0.elapsed() >= Duration::from_millis(75), "stall skipped");
    assert!(slow.contains("\"ok\":true"), "{slow}");
    // The delayed bytes must equal an undisturbed replay of the same work.
    let fast = c.call(GEMM);
    assert_eq!(slow, fast, "delay must not change the payload");

    h.shutdown();
    assert!(faults.counters().conserved());
    assert_eq!(faults.counters().injected_total(), 1);
}

/// A short write leaks a truncated prefix and drops the connection; a
/// fresh connection gets clean service, and the injected/observed ledger
/// conserves.
#[test]
fn partial_write_truncates_then_drops_the_connection() {
    let faults = Scripted::armed(&[(
        FaultSite::PartialWrite,
        &[Some(Injection::PartialWrite { keep: 7 })],
    )]);
    let h = spawn_with(Arc::clone(&faults) as Arc<dyn FaultPoint>);
    let addr = h.local_addr();
    let mut c = Lockstep::connect(addr);

    c.send(GEMM);
    match c.recv() {
        // EOF before any byte, or a 7-byte prefix that cannot parse.
        Err(_) => {}
        Ok(fragment) => {
            assert!(
                fragment.len() <= 7,
                "got more than the prefix: {fragment:?}"
            );
            assert!(protocol::parse_response(&fragment).is_err());
        }
    }

    let mut fresh = Lockstep::connect(addr);
    let ok = fresh.call(GEMM);
    assert!(ok.contains("\"ok\":true"), "{ok}");

    h.shutdown();
    assert!(faults.counters().conserved());
}

/// An injected read error kills only its own connection, mid-stream.
#[test]
fn read_error_drops_the_connection_before_dispatch() {
    let faults = Scripted::armed(&[(
        FaultSite::SockRead,
        // First request passes, second is eaten.
        &[None, Some(Injection::ReadError)],
    )]);
    let h = spawn_with(Arc::clone(&faults) as Arc<dyn FaultPoint>);
    let mut c = Lockstep::connect(h.local_addr());

    let ok = c.call(GEMM);
    assert!(ok.contains("\"ok\":true"), "{ok}");
    c.send(GEMM);
    assert!(c.recv().is_err(), "second request must never be answered");

    let stats = h.shutdown();
    assert_eq!(stats.requests, 1, "the eaten request was never dispatched");
    assert!(faults.counters().conserved());
}

/// The acceptance scenario: a batch span is killed mid-stream by a write
/// fault while a *concurrent* client interleaves its own requests on the
/// same server. The victim loses its connection; the observer's full
/// transcript is byte-identical to the one an unfaulted server produces.
#[test]
fn mid_batch_kill_leaves_concurrent_client_byte_identical() {
    let batch = concat!(
        r#"{"id":"victim","op":"batch","items":["#,
        r#"{"op":"gemm","m":32,"n":32,"k":32},"#,
        r#"{"op":"gemm","m":48,"n":48,"k":48},"#,
        r#"{"op":"gemm","m":56,"n":56,"k":56},"#,
        r#"{"op":"gemm","m":72,"n":72,"k":72}]}"#
    );
    let observer_reqs = [
        r#"{"id":"o-0","op":"gemm","m":96,"n":96,"k":96}"#,
        r#"{"id":"o-1","op":"conv","layer":{"n":1,"ci":32,"hi":14,"wi":14,"co":32,"hf":3,"wf":3,"pad":1}}"#,
        r#"{"id":"o-2","op":"gemm","m":48,"n":48,"k":48}"#,
    ];

    // Reference: the observer's conversation on a server with no faults.
    let clean = spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("spawn clean server");
    let mut ref_client = Lockstep::connect(clean.local_addr());
    let reference: Vec<String> = observer_reqs.iter().map(|r| ref_client.call(r)).collect();
    clean.shutdown();

    // Faulted server: the observer's first response passes the write seam
    // untouched (the leading `None`), then the victim's batch span dies on
    // its second item line.
    let faults = Scripted::armed(&[(
        FaultSite::SockWrite,
        &[None, None, Some(Injection::WriteError)],
    )]);
    let h = spawn_with(Arc::clone(&faults) as Arc<dyn FaultPoint>);
    let addr = h.local_addr();

    let mut observer = Lockstep::connect(addr);
    let mut victim = Lockstep::connect(addr);
    let mut transcript = Vec::new();

    // Observer request 1 — consumes write consultation #0.
    transcript.push(observer.call(observer_reqs[0]));
    // Victim's batch: its span needs 5 write consultations but only #1
    // survives the script, so the connection dies mid-span. (Whether the
    // surviving item line actually reaches the victim depends on flush
    // timing — the writer buffers bursts — so only count, never require.)
    victim.send(batch);
    let mut got_items = 0;
    let mut died = false;
    for _ in 0..5 {
        match victim.recv() {
            Ok(line) => {
                assert!(line.contains("\"id\":\"victim\""), "{line}");
                got_items += 1;
            }
            Err(_) => {
                died = true;
                break;
            }
        }
    }
    assert!(died, "victim connection must drop mid-span");
    assert!(got_items < 5, "the whole span must not get through");
    // The observer keeps conversing on the same server, undisturbed.
    transcript.push(observer.call(observer_reqs[1]));
    transcript.push(observer.call(observer_reqs[2]));

    assert_eq!(
        transcript, reference,
        "a concurrent client's bytes must not change because another \
         connection was killed mid-batch"
    );
    let stats = h.shutdown();
    assert!(faults.counters().conserved());
    assert_eq!(faults.counters().injected_total(), 1);
    assert_eq!(stats.hits + stats.misses, stats.requests);
}

/// End-to-end through the seeded plan (not a script): rate 1.0 on the
/// panic site only — every miss crashes, typed, forever; hits never touch
/// a worker so a pre-seeded cache entry still serves.
#[test]
fn seeded_plan_panic_rate_one_crashes_every_miss() {
    let plan = Arc::new(FaultPlan::parse("seed=9,rate=0,panic=1").expect("spec"));
    let h = spawn_with(Arc::clone(&plan) as Arc<dyn FaultPoint>);
    let mut c = Lockstep::connect(h.local_addr());

    for _ in 0..3 {
        let crashed = c.call(GEMM);
        assert!(
            crashed.contains("\"error\":\"worker-crashed\""),
            "{crashed}"
        );
    }
    // Disarm: the same request now computes, caches, and replays.
    plan.disarm();
    let ok = c.call(GEMM);
    assert!(ok.contains("\"ok\":true"), "{ok}");
    let hit = c.call(GEMM);
    assert_eq!(ok, hit);

    let stats = h.shutdown();
    assert_eq!(stats.worker_crashes, 3);
    assert!(plan.counters().conserved());
    assert_eq!(plan.counters().injected[FaultSite::WorkerPanic.index()], 3);
}

/// Typed `worker-crashed` parses back through the public protocol.
#[test]
fn worker_crashed_roundtrips_through_the_codec() {
    let line = protocol::finish_response(
        Some("x"),
        &protocol::error_body(ErrorKind::WorkerCrashed, "simulation worker panicked"),
    );
    match protocol::parse_response(&line) {
        Ok(Response::Error { id, kind, detail }) => {
            assert_eq!(id.as_deref(), Some("x"));
            assert_eq!(kind, ErrorKind::WorkerCrashed);
            assert_eq!(detail, "simulation worker panicked");
        }
        other => panic!("{line} parsed as {other:?}"),
    }
}
