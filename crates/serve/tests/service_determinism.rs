//! Service-level determinism: N concurrent clients replaying the same
//! request mix get byte-identical responses, whatever the worker count and
//! whatever the cache happens to contain — and the cache counters always
//! partition the request count (`hits + misses == requests`).
//!
//! This is the observable consequence of the server's design: responses are
//! cached as id-free bodies and the id is grafted on at send time, so a
//! cache replay is indistinguishable from a fresh simulation. The mix uses
//! AlexNet only (GPU layers are slow in debug builds) plus a GEMM and
//! hardware-override probes so all three work kinds cross the wire.

use std::collections::BTreeMap;

use iconv_gpusim::GpuAlgo;
use iconv_serve::protocol::encode_estimate;
use iconv_serve::{
    spawn, Client, EstimateRequest, GpuHwSpec, Response, ServerConfig, TpuChip, TpuHwSpec,
    TuneTarget, Work,
};
use iconv_tpusim::SimMode;

/// The shared request mix: every client sends exactly these lines, ids
/// encode the request index so equal requests produce equal lines across
/// clients.
fn request_mix() -> Vec<String> {
    let alexnet = iconv_workloads::all_models(8)
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case("alexnet"))
        .expect("workload table lost AlexNet");
    let mut works = Vec::new();
    for layer in &alexnet.layers {
        works.push(Work::TpuConv {
            shape: layer.shape,
            mode: SimMode::ChannelFirst,
            hw: TpuHwSpec::default(),
        });
        works.push(Work::TpuConv {
            shape: layer.shape,
            mode: SimMode::Explicit,
            hw: TpuHwSpec::default(),
        });
    }
    // One layer on the V3 spelling and one GEMM + GPU pair: all work kinds
    // and a hardware override in the mix.
    works.push(Work::TpuConv {
        shape: alexnet.layers[1].shape,
        mode: SimMode::ChannelFirst,
        hw: TpuHwSpec {
            chip: TpuChip::V3,
            ..TpuHwSpec::default()
        },
    });
    works.push(Work::TpuGemm {
        m: 512,
        n: 256,
        k: 384,
        hw: TpuHwSpec::default(),
    });
    works.push(Work::GpuConv {
        shape: alexnet.layers[2].shape,
        algo: GpuAlgo::ChannelFirst { reuse: true },
        hw: GpuHwSpec::default(),
    });
    // One design-space search: the tune ledger and the byte-identity of
    // `tune` responses ride the same replay harness as plain estimates.
    works.push(Work::Tune {
        shape: alexnet.layers[1].shape,
        target: TuneTarget::Tpu { chip: TpuChip::V2 },
    });
    works
        .into_iter()
        .enumerate()
        .map(|(i, work)| {
            encode_estimate(&EstimateRequest {
                id: Some(format!("r{i}")),
                work,
                deadline_ms: None,
            })
        })
        .collect()
}

/// Run `clients` concurrent connections, each replaying `mix` pipelined,
/// against a fresh server with `workers` workers. Returns each client's
/// in-order response lines plus the final stats.
fn run_round(
    workers: usize,
    clients: usize,
    mix: &[String],
) -> (Vec<Vec<String>>, iconv_serve::StatsSnapshot) {
    let handle = spawn(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let addr = handle.local_addr().to_string();

    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    // Two pipelined rounds with a full read between them:
                    // round 1 races the other clients on a cold cache,
                    // round 2 is guaranteed warm (every key was answered to
                    // this very client before it re-asks).
                    let mut c = Client::connect(addr.as_str()).expect("connect");
                    let mut got = Vec::with_capacity(2 * mix.len());
                    for _round in 0..2 {
                        for line in mix {
                            c.send_line(line).expect("send");
                        }
                        c.flush().expect("flush");
                        for _ in 0..mix.len() {
                            got.push(c.recv_line().expect("recv"));
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let stats = handle.shutdown();
    (transcripts, stats)
}

#[test]
fn concurrent_clients_get_byte_identical_responses() {
    let mix = request_mix();
    assert!(mix.len() >= 12, "mix too small to be interesting");

    let mut reference: Option<Vec<String>> = None;
    for workers in [1usize, 4] {
        let clients = 4;
        let (transcripts, stats) = run_round(workers, clients, &mix);

        // Every client sees the same bytes, in its own request order —
        // across clients racing each other, and across worker counts.
        for (ci, t) in transcripts.iter().enumerate() {
            assert_eq!(
                t, &transcripts[0],
                "client {ci} diverged from client 0 at {workers} workers"
            );
        }
        match &reference {
            None => reference = Some(transcripts[0].clone()),
            Some(r) => assert_eq!(
                &transcripts[0], r,
                "responses changed between worker counts"
            ),
        }

        // Each response echoes the id of its own request: per-connection
        // ordering survived the concurrent dispatch.
        for t in &transcripts {
            for (i, line) in t.iter().enumerate() {
                let resp = iconv_serve::protocol::parse_response(line)
                    .unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"));
                let want = format!("r{}", i % mix.len());
                assert_eq!(resp.id(), Some(want.as_str()), "line {line}");
                assert!(
                    !matches!(resp, Response::Error { .. }),
                    "unexpected error response {line}"
                );
            }
        }

        // Counter discipline: rejected work is excluded from `requests`, so
        // hits and misses partition it exactly once the server is drained.
        let total = (clients * 2 * mix.len()) as u64;
        assert_eq!(stats.requests, total, "{workers} workers");
        assert_eq!(
            stats.hits + stats.misses,
            stats.requests,
            "{workers} workers: hits {} + misses {} != requests {}",
            stats.hits,
            stats.misses,
            stats.requests
        );
        // Round 2 is all hits for every client (each key was answered to
        // that client before it re-asked), so at least half the traffic
        // must have been served from cache. Round 1's hit count is racy —
        // a cold concurrent burst can legitimately miss everything — and
        // deliberately not asserted.
        assert!(
            stats.hits >= total / 2,
            "{workers} workers: only {} hits of {total} requests",
            stats.hits
        );
        // Tune ledger: every delivered tune answer is a search or a cached
        // replay, and exactly one search ran per distinct tune key (the
        // mix has one) — single-flight plus the warm round make the rest
        // cached.
        let tune_total = (clients * 2) as u64;
        assert_eq!(stats.tunes, tune_total, "{workers} workers");
        assert_eq!(
            stats.tunes,
            stats.tune_searches + stats.tune_cached,
            "{workers} workers: tune ledger leaked"
        );
        assert_eq!(stats.tune_searches, 1, "{workers} workers");
    }
}

/// The distinct-key census: a mixed workload's responses, bucketed by
/// request line, are identical whether served cold or warm (two rounds on
/// one server).
#[test]
fn warm_cache_replays_cold_bytes() {
    let mix = request_mix();
    let handle = spawn(ServerConfig::default()).expect("spawn server");
    let mut c = Client::connect(handle.local_addr().to_string().as_str()).expect("connect");

    let mut rounds: Vec<BTreeMap<&str, String>> = Vec::new();
    for _ in 0..2 {
        let mut seen = BTreeMap::new();
        for line in &mix {
            c.send_line(line).expect("send");
        }
        c.flush().expect("flush");
        for line in &mix {
            seen.insert(line.as_str(), c.recv_line().expect("recv"));
        }
        rounds.push(seen);
    }
    assert_eq!(rounds[0], rounds[1], "warm replay changed response bytes");

    let stats = handle.shutdown();
    assert_eq!(stats.hits + stats.misses, stats.requests);
    assert!(
        stats.hits >= mix.len() as u64,
        "second round should be all cache hits: {} hits for {} requests",
        stats.hits,
        stats.requests
    );
}
