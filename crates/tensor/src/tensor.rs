//! Dense 4-D tensors with pluggable memory layout.

use crate::layout::{Coord, Dims, Layout};
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Scalar element types usable in tensors and matrices.
///
/// Implemented for `f32`, `f64`, `i32` and `i64`. Integer instantiations are
/// useful in tests where exact equality across algorithm paths is wanted.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + fmt::Debug
    + Add<Output = Self>
    + AddAssign
    + Mul<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from `f64`, used by synthetic-data generators.
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64`, used by comparison helpers.
    fn to_f64(self) -> f64;
    /// Half-width of the range synthetic generators should draw from:
    /// floats use `[-1, 1]`; integers widen to `[-8, 8]` so truncation does
    /// not collapse them to zero.
    fn random_scale() -> f64 {
        1.0
    }
}

macro_rules! impl_scalar_float {
    ($t:ty) => {
        impl Scalar for $t {
            fn zero() -> Self {
                0.0
            }
            fn one() -> Self {
                1.0
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

macro_rules! impl_scalar_int {
    ($t:ty) => {
        impl Scalar for $t {
            fn zero() -> Self {
                0
            }
            fn one() -> Self {
                1
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn random_scale() -> f64 {
                8.0
            }
        }
    };
}

impl_scalar_float!(f32);
impl_scalar_float!(f64);
impl_scalar_int!(i32);
impl_scalar_int!(i64);

/// A dense 4-D tensor stored in one contiguous buffer with a [`Layout`].
///
/// # Examples
///
/// ```
/// # use iconv_tensor::{Tensor, Dims, Coord, Layout};
/// let mut t: Tensor<f32> = Tensor::zeros(Dims::new(1, 3, 4, 4), Layout::Nhwc);
/// t.set(Coord::new(0, 2, 1, 1), 7.0);
/// assert_eq!(t.get(Coord::new(0, 2, 1, 1)), 7.0);
/// // Relayout preserves logical contents:
/// let u = t.relayout(Layout::Nchw);
/// assert_eq!(u.get(Coord::new(0, 2, 1, 1)), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    dims: Dims,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Scalar> Tensor<T> {
    /// An all-zero tensor.
    pub fn zeros(dims: Dims, layout: Layout) -> Self {
        Self {
            dims,
            layout,
            data: vec![T::zero(); dims.len()],
        }
    }

    /// A tensor whose element at each coordinate is `f(coord)`.
    pub fn from_fn(dims: Dims, layout: Layout, mut f: impl FnMut(Coord) -> T) -> Self {
        let mut t = Self::zeros(dims, layout);
        for coord in dims.iter() {
            t.set(coord, f(coord));
        }
        t
    }

    /// A deterministic pseudo-random tensor (floats in `[-1, 1]`, integers
    /// in `[-8, 8]` — see [`Scalar::random_scale`]), seeded so tests are
    /// reproducible without pulling in an RNG crate here.
    pub fn random(dims: Dims, layout: Layout, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        Self::from_fn(dims, layout, |_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let unit = ((v >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            T::from_f64(unit * T::random_scale())
        })
    }

    /// A tensor where each element encodes its own coordinates
    /// (`n*1e6 + c*1e4 + h*1e2 + w`), handy for tracing data movement.
    pub fn coordinate_coded(dims: Dims, layout: Layout) -> Self {
        Self::from_fn(dims, layout, |c| {
            T::from_f64((c.n * 1_000_000 + c.c * 10_000 + c.h * 100 + c.w) as f64)
        })
    }

    /// Tensor extents.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The memory layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Read the element at `coord`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `coord` is out of bounds.
    pub fn get(&self, coord: Coord) -> T {
        self.data[self.layout.offset(self.dims, coord)]
    }

    /// Write the element at `coord`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `coord` is out of bounds.
    pub fn set(&mut self, coord: Coord, v: T) {
        let off = self.layout.offset(self.dims, coord);
        self.data[off] = v;
    }

    /// Add `v` to the element at `coord` (partial-sum accumulation).
    pub fn accumulate(&mut self, coord: Coord, v: T) {
        let off = self.layout.offset(self.dims, coord);
        self.data[off] += v;
    }

    /// The raw backing buffer in layout order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw backing buffer in layout order, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copy into a new tensor with a different layout (logical contents
    /// preserved). Returns a clone when the layout already matches.
    pub fn relayout(&self, layout: Layout) -> Self {
        if layout == self.layout {
            return self.clone();
        }
        Self::from_fn(self.dims, layout, |c| self.get(c))
    }

    /// Maximum absolute elementwise difference to `other`, comparing logical
    /// contents regardless of layout.
    ///
    /// # Panics
    ///
    /// Panics if the dims differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.dims, other.dims, "dims mismatch");
        self.dims
            .iter()
            .map(|c| (self.get(c).to_f64() - other.get(c).to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// True when all elements differ by at most `tol` (logical comparison).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.dims == other.dims && self.max_abs_diff(other) <= tol
    }
}

impl<T: Scalar> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor<{}> {:?} in {}",
            std::any::type_name::<T>(),
            self.dims,
            self.layout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t: Tensor<i32> = Tensor::zeros(Dims::new(1, 2, 3, 3), Layout::Nchw);
        assert_eq!(t.get(Coord::new(0, 1, 2, 2)), 0);
        t.set(Coord::new(0, 1, 2, 2), 42);
        assert_eq!(t.get(Coord::new(0, 1, 2, 2)), 42);
    }

    #[test]
    fn from_fn_places_values_by_coord_not_offset() {
        for layout in Layout::ALL {
            let t: Tensor<i64> = Tensor::from_fn(Dims::new(2, 2, 2, 2), layout, |c| {
                (c.n * 8 + c.c * 4 + c.h * 2 + c.w) as i64
            });
            assert_eq!(t.get(Coord::new(1, 0, 1, 0)), 10);
        }
    }

    #[test]
    fn relayout_preserves_contents() {
        let t: Tensor<f64> = Tensor::random(Dims::new(2, 3, 4, 5), Layout::Nchw, 7);
        for layout in Layout::ALL {
            let u = t.relayout(layout);
            assert!(t.approx_eq(&u, 0.0));
            assert_eq!(u.layout(), layout);
        }
    }

    #[test]
    fn relayout_changes_raw_order() {
        let t: Tensor<i32> = Tensor::coordinate_coded(Dims::new(1, 2, 2, 2), Layout::Nchw);
        let u = t.relayout(Layout::Nhwc);
        assert_ne!(t.as_slice(), u.as_slice());
    }

    #[test]
    fn random_is_deterministic_and_varied() {
        let a: Tensor<f32> = Tensor::random(Dims::new(1, 2, 4, 4), Layout::Nchw, 3);
        let b: Tensor<f32> = Tensor::random(Dims::new(1, 2, 4, 4), Layout::Nchw, 3);
        assert!(a.approx_eq(&b, 0.0));
        let c: Tensor<f32> = Tensor::random(Dims::new(1, 2, 4, 4), Layout::Nchw, 4);
        assert!(!a.approx_eq(&c, 1e-12));
        // Values in range.
        assert!(a.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn integer_random_tensors_are_actually_nonzero() {
        // Regression guard: integer instantiations must not truncate the
        // unit range to all zeros (which would hollow out every bit-exact
        // equivalence test built on them).
        let t: Tensor<i64> = Tensor::random(Dims::new(2, 4, 8, 8), Layout::Nchw, 11);
        let nonzero = t.as_slice().iter().filter(|&&v| v != 0).count();
        assert!(
            nonzero * 2 > t.dims().len(),
            "only {nonzero}/{} nonzero",
            t.dims().len()
        );
        let distinct: std::collections::BTreeSet<i64> = t.as_slice().iter().copied().collect();
        assert!(
            distinct.len() >= 8,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn accumulate_adds() {
        let mut t: Tensor<f32> = Tensor::zeros(Dims::new(1, 1, 1, 1), Layout::Nchw);
        t.accumulate(Coord::new(0, 0, 0, 0), 1.5);
        t.accumulate(Coord::new(0, 0, 0, 0), 2.5);
        assert_eq!(t.get(Coord::new(0, 0, 0, 0)), 4.0);
    }

    #[test]
    fn max_abs_diff_across_layouts() {
        let t: Tensor<f32> = Tensor::random(Dims::new(1, 3, 4, 4), Layout::Nchw, 11);
        let mut u = t.relayout(Layout::Hwcn);
        assert_eq!(t.max_abs_diff(&u), 0.0);
        u.set(Coord::new(0, 0, 0, 0), 100.0);
        assert!(t.max_abs_diff(&u) > 90.0);
    }
}
