//! **Explicit** im2col: materializing the lowered IFMap matrix.
//!
//! This is the baseline the paper argues against (Sec. II-B): it duplicates
//! input data up to `Hf × Wf` times (Table I) and spends time on the
//! transformation itself (Fig. 2). It is also the semantic specification the
//! implicit algorithms in `iconv-core` must match.
//!
//! Both **column orders** are supported:
//!
//! * [`ColumnOrder::ChannelLast`] — the conventional order (`Ci` slowest:
//!   a full `Hf×Wf` window per channel, channels concatenated), used by
//!   Lym et al. / cuDNN-style implicit im2col.
//! * [`ColumnOrder::ChannelFirst`] — the paper's order (`Ci` fastest: the
//!   same filter tap across all channels adjacent), which makes each lowered
//!   column a 1×1-conv slice and enables the crossbar-free SRAM layout.

use crate::conv_ref::{filter_dims, ifmap_dims, input_pixel, ofmap_dims};
use crate::layout::{Coord, Layout};
use crate::mat::Matrix;
use crate::shape::ConvShape;
use crate::tensor::{Scalar, Tensor};
use std::fmt;

/// Position of one filter tap: `(fh, fw, ci)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tap {
    /// Filter row.
    pub fh: usize,
    /// Filter column.
    pub fw: usize,
    /// Input channel.
    pub ci: usize,
}

/// The order in which the `Hf·Wf·Ci` reduction dimension of the lowered
/// matrix is linearized (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColumnOrder {
    /// `ci` is the slowest axis: `col = ((ci·Hf) + fh)·Wf + fw`.
    #[default]
    ChannelLast,
    /// `ci` is the fastest axis: `col = ((fh·Wf) + fw)·Ci + ci`.
    ChannelFirst,
}

impl ColumnOrder {
    /// Both orders, for exhaustive tests.
    pub const ALL: [ColumnOrder; 2] = [ColumnOrder::ChannelLast, ColumnOrder::ChannelFirst];

    /// Linear column index of a tap.
    pub fn col(self, shape: &ConvShape, tap: Tap) -> usize {
        debug_assert!(tap.fh < shape.hf && tap.fw < shape.wf && tap.ci < shape.ci);
        match self {
            ColumnOrder::ChannelLast => (tap.ci * shape.hf + tap.fh) * shape.wf + tap.fw,
            ColumnOrder::ChannelFirst => (tap.fh * shape.wf + tap.fw) * shape.ci + tap.ci,
        }
    }

    /// Inverse of [`ColumnOrder::col`].
    ///
    /// # Panics
    ///
    /// Panics if `col >= shape.lowered_cols()`.
    pub fn tap(self, shape: &ConvShape, col: usize) -> Tap {
        assert!(col < shape.lowered_cols(), "column {col} out of range");
        match self {
            ColumnOrder::ChannelLast => Tap {
                ci: col / (shape.hf * shape.wf),
                fh: (col / shape.wf) % shape.hf,
                fw: col % shape.wf,
            },
            ColumnOrder::ChannelFirst => Tap {
                fh: col / (shape.wf * shape.ci),
                fw: (col / shape.ci) % shape.wf,
                ci: col % shape.ci,
            },
        }
    }

    /// The permutation mapping *this* order's columns onto `other`'s:
    /// `perm[j]` is the column index in `other` holding the same tap as
    /// column `j` here. `A_other.permute_cols(&perm) == A_self`.
    pub fn permutation_to(self, other: ColumnOrder, shape: &ConvShape) -> Vec<usize> {
        (0..shape.lowered_cols())
            .map(|j| other.col(shape, self.tap(shape, j)))
            .collect()
    }
}

impl fmt::Display for ColumnOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ColumnOrder::ChannelLast => "channel-last",
            ColumnOrder::ChannelFirst => "channel-first",
        })
    }
}

/// Output pixel addressed by lowered-matrix row `row`: `(n, oh, ow)`.
///
/// # Panics
///
/// Panics if `row >= shape.lowered_rows()`.
pub fn row_to_output(shape: &ConvShape, row: usize) -> (usize, usize, usize) {
    assert!(row < shape.lowered_rows(), "row {row} out of range");
    let per_img = shape.out_h() * shape.out_w();
    (
        row / per_img,
        (row % per_img) / shape.out_w(),
        row % shape.out_w(),
    )
}

/// Lowered-matrix row of output pixel `(n, oh, ow)`.
pub fn output_to_row(shape: &ConvShape, n: usize, oh: usize, ow: usize) -> usize {
    (n * shape.out_h() + oh) * shape.out_w() + ow
}

/// IFMap coordinate at lowered-matrix entry `(row, col)`, or `None` when the
/// entry is a padding zero.
pub fn entry_coord(shape: &ConvShape, order: ColumnOrder, row: usize, col: usize) -> Option<Coord> {
    let (n, oh, ow) = row_to_output(shape, row);
    let tap = order.tap(shape, col);
    let (h, w) = input_pixel(shape, oh, ow, tap.fh, tap.fw)?;
    Some(Coord::new(n, tap.ci, h, w))
}

/// Materialize the lowered IFMap matrix (`N·Ho·Wo × Hf·Wf·Ci`): the explicit
/// im2col transformation.
///
/// # Panics
///
/// Panics if `ifmap.dims()` does not match `shape`.
pub fn lower<T: Scalar>(shape: &ConvShape, ifmap: &Tensor<T>, order: ColumnOrder) -> Matrix<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    // Read through a raw NCHW buffer; relayout once rather than paying
    // `layout.offset` per entry of the (often ~9x duplicated) matrix.
    let x_nchw;
    let x = if ifmap.layout() == Layout::Nchw {
        ifmap
    } else {
        x_nchw = ifmap.relayout(Layout::Nchw);
        &x_nchw
    };
    let xs = x.as_slice();
    let (hi, wi) = (shape.hi, shape.wi);
    // Tap table: the per-column `order.tap` divisions are invariant across
    // rows, so compute them once instead of rows × cols times.
    let taps: Vec<Tap> = (0..shape.lowered_cols())
        .map(|c| order.tap(shape, c))
        .collect();
    let mut out = Matrix::zeros(shape.lowered_rows(), shape.lowered_cols());
    // Rows walk (n, oh, ow) in exactly `output_to_row` order; padding
    // entries keep the zero the matrix was initialized with.
    let mut row = 0;
    for n in 0..shape.n {
        for oh in 0..shape.out_h() {
            for ow in 0..shape.out_w() {
                let orow = out.row_mut(row);
                for (o, tap) in orow.iter_mut().zip(&taps) {
                    if let Some((h, w)) = input_pixel(shape, oh, ow, tap.fh, tap.fw) {
                        *o = xs[((n * shape.ci + tap.ci) * hi + h) * wi + w];
                    }
                }
                row += 1;
            }
        }
    }
    out
}

/// Flatten the filter tensor to the `Hf·Wf·Ci × Co` matrix whose row order
/// matches `order`.
///
/// # Panics
///
/// Panics if `filter.dims()` does not match `shape`.
pub fn filter_matrix<T: Scalar>(
    shape: &ConvShape,
    filter: &Tensor<T>,
    order: ColumnOrder,
) -> Matrix<T> {
    assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
    let f_nchw;
    let f = if filter.layout() == Layout::Nchw {
        filter
    } else {
        f_nchw = filter.relayout(Layout::Nchw);
        &f_nchw
    };
    let fs = f.as_slice();
    let per_co = shape.ci * shape.hf * shape.wf;
    let mut out = Matrix::zeros(shape.lowered_cols(), shape.co);
    for k in 0..shape.lowered_cols() {
        let tap = order.tap(shape, k);
        // NCHW filter offset of this tap within one co slab.
        let base = (tap.ci * shape.hf + tap.fh) * shape.wf + tap.fw;
        for (co, o) in out.row_mut(k).iter_mut().enumerate() {
            *o = fs[co * per_co + base];
        }
    }
    out
}

/// Fold the `N·Ho·Wo × Co` GEMM result back into an `NCHW` OFMap tensor
/// (col2im for non-overlapping outputs, i.e. a reshape).
///
/// # Panics
///
/// Panics if the matrix shape does not match `shape`'s output.
pub fn ofmap_from_matrix<T: Scalar>(shape: &ConvShape, m: &Matrix<T>) -> Tensor<T> {
    assert_eq!(
        m.shape(),
        (shape.lowered_rows(), shape.co),
        "output matrix shape mismatch"
    );
    Tensor::from_fn(ofmap_dims(shape), Layout::Nchw, |c| {
        m[(output_to_row(shape, c.n, c.h, c.w), c.c)]
    })
}

/// Convolution via explicit im2col: lower, GEMM, fold. Matches
/// [`crate::conv_ref::direct_conv`] exactly.
pub fn conv_explicit<T: Scalar>(
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
    order: ColumnOrder,
) -> Tensor<T> {
    let a = lower(shape, ifmap, order);
    let b = filter_matrix(shape, filter, order);
    // The lowered GEMM dominates large equivalence sweeps; par_matmul splits
    // M across workers and is bit-identical to the serial kernel.
    ofmap_from_matrix(shape, &a.par_matmul(&b))
}

/// The adjoint of [`lower`]: scatter-add a lowered-shaped matrix back into
/// an IFMap-shaped tensor (Caffe's `col2im`). Overlapping receptive fields
/// accumulate; padding entries are discarded.
///
/// Satisfies the adjoint identity
/// `⟨lower(x), d⟩ = ⟨x, col2im_accumulate(d)⟩` exactly (see tests), which is
/// also why the input-gradient of convolution is a `col2im` of a GEMM
/// result.
///
/// # Panics
///
/// Panics if `m` is not `lowered_rows × lowered_cols` for `shape`.
pub fn col2im_accumulate<T: Scalar>(
    shape: &ConvShape,
    m: &Matrix<T>,
    order: ColumnOrder,
) -> Tensor<T> {
    assert_eq!(
        m.shape(),
        (shape.lowered_rows(), shape.lowered_cols()),
        "lowered matrix shape mismatch"
    );
    let mut out = Tensor::zeros(ifmap_dims(shape), crate::layout::Layout::Nchw);
    for row in 0..shape.lowered_rows() {
        for col in 0..shape.lowered_cols() {
            if let Some(coord) = entry_coord(shape, order, row, col) {
                out.accumulate(coord, m[(row, col)]);
            }
        }
    }
    out
}

/// Bytes of the materialized lowered IFMap (the Table I "Lower IFmaps" row).
pub fn lowered_bytes(shape: &ConvShape, elem_bytes: usize) -> u64 {
    shape.lowered_elems() as u64 * elem_bytes as u64
}

/// Bytes of the original IFMap (the Table I "IFmaps" row).
pub fn ifmap_bytes(shape: &ConvShape, elem_bytes: usize) -> u64 {
    shape.ifmap_elems() as u64 * elem_bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_ref::direct_conv;

    fn shape() -> ConvShape {
        ConvShape::square(1, 8, 5, 4, 3, 1, 0).unwrap()
    }

    #[test]
    fn column_index_roundtrip_both_orders() {
        let s = ConvShape::square(1, 5, 8, 2, 3, 1, 1).unwrap();
        for order in ColumnOrder::ALL {
            for col in 0..s.lowered_cols() {
                let tap = order.tap(&s, col);
                assert_eq!(order.col(&s, tap), col, "{order} col {col}");
            }
        }
    }

    #[test]
    fn channel_first_is_ci_fastest() {
        let s = shape();
        // Adjacent columns within a tap group differ only in ci.
        let t0 = ColumnOrder::ChannelFirst.tap(&s, 0);
        let t1 = ColumnOrder::ChannelFirst.tap(&s, 1);
        assert_eq!((t0.fh, t0.fw, t0.ci), (0, 0, 0));
        assert_eq!((t1.fh, t1.fw, t1.ci), (0, 0, 1));
        // Channel-last: adjacent columns differ in fw.
        let u1 = ColumnOrder::ChannelLast.tap(&s, 1);
        assert_eq!((u1.fh, u1.fw, u1.ci), (0, 1, 0));
    }

    #[test]
    fn row_mapping_roundtrip() {
        let s = ConvShape::square(3, 2, 6, 2, 3, 2, 1).unwrap();
        for row in 0..s.lowered_rows() {
            let (n, oh, ow) = row_to_output(&s, row);
            assert_eq!(output_to_row(&s, n, oh, ow), row);
        }
    }

    #[test]
    fn lowered_matrix_matches_paper_figure1_dims() {
        let s = shape();
        let x = Tensor::<i32>::coordinate_coded(ifmap_dims(&s), Layout::Nchw);
        let a = lower(&s, &x, ColumnOrder::ChannelLast);
        assert_eq!(a.shape(), (9, 72));
        // Row 0 = receptive field of output (0,0); its first channel-last
        // entries walk the window (0,0),(0,1),(0,2),(1,0)... of channel 0.
        assert_eq!(a[(0, 0)], 0); // (c0,h0,w0)
        assert_eq!(a[(0, 1)], 1); // (c0,h0,w1)
        assert_eq!(a[(0, 3)], 100); // (c0,h1,w0)
                                    // Channel-first: first entries walk channels of pixel (0,0).
        let b = lower(&s, &x, ColumnOrder::ChannelFirst);
        assert_eq!(b[(0, 0)], 0); // (c0,h0,w0)
        assert_eq!(b[(0, 1)], 10_000); // (c1,h0,w0)
    }

    #[test]
    fn orders_are_column_permutations_of_each_other() {
        let s = ConvShape::square(2, 3, 5, 2, 3, 1, 1).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 21);
        let last = lower(&s, &x, ColumnOrder::ChannelLast);
        let first = lower(&s, &x, ColumnOrder::ChannelFirst);
        let perm = ColumnOrder::ChannelFirst.permutation_to(ColumnOrder::ChannelLast, &s);
        assert_eq!(last.permute_cols(&perm), first);
    }

    #[test]
    fn explicit_conv_equals_direct_both_orders() {
        for (stride, pad, dil) in [(1, 0, 1), (1, 1, 1), (2, 1, 1), (2, 0, 1), (1, 2, 2)] {
            let s = ConvShape::new(2, 3, 9, 9, 4, 3, 3)
                .stride(stride)
                .pad(pad)
                .dilation(dil)
                .build()
                .unwrap();
            let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 31);
            let f = Tensor::<i64>::random(filter_dims(&s), Layout::Nchw, 32);
            let want = direct_conv(&s, &x, &f);
            for order in ColumnOrder::ALL {
                let got = conv_explicit(&s, &x, &f, order);
                assert!(
                    want.approx_eq(&got, 0.0),
                    "mismatch s{stride} p{pad} d{dil} {order}"
                );
            }
        }
    }

    #[test]
    fn padding_entries_are_zero() {
        let s = ConvShape::square(1, 1, 3, 1, 3, 1, 1).unwrap();
        let x = Tensor::<i32>::from_fn(ifmap_dims(&s), Layout::Nchw, |_| 7);
        let a = lower(&s, &x, ColumnOrder::ChannelFirst);
        // Output (0,0), tap (0,0) is padding.
        assert_eq!(entry_coord(&s, ColumnOrder::ChannelFirst, 0, 0), None);
        assert_eq!(a[(0, 0)], 0);
        // Centre output (1,1) has no padding anywhere in its window.
        let centre_row = output_to_row(&s, 0, 1, 1);
        for col in 0..s.lowered_cols() {
            assert_eq!(a[(centre_row, col)], 7);
        }
    }

    #[test]
    fn table1_style_duplication() {
        // Stride-1 3x3 conv on a large map duplicates ~9x.
        let s = ConvShape::square(1, 64, 112, 64, 3, 1, 1).unwrap();
        let dup = lowered_bytes(&s, 2) as f64 / ifmap_bytes(&s, 2) as f64;
        assert!(dup > 8.8 && dup <= 9.0, "dup = {dup}");
    }

    #[test]
    fn col2im_counts_receptive_field_multiplicity() {
        // col2im(lower(ones)) = per-pixel window multiplicity: 3x3 stride 1
        // on 5x5 -> centre pixel is in 9 windows, corner in 1.
        let s = ConvShape::square(1, 1, 5, 1, 3, 1, 0).unwrap();
        let x = Tensor::<i64>::from_fn(ifmap_dims(&s), Layout::Nchw, |_| 1);
        let folded = col2im_accumulate(
            &s,
            &lower(&s, &x, ColumnOrder::ChannelFirst),
            ColumnOrder::ChannelFirst,
        );
        assert_eq!(folded.get(crate::Coord::new(0, 0, 2, 2)), 9);
        assert_eq!(folded.get(crate::Coord::new(0, 0, 0, 0)), 1);
        assert_eq!(folded.get(crate::Coord::new(0, 0, 0, 2)), 3);
    }

    #[test]
    fn col2im_is_the_exact_adjoint_of_lower() {
        // <lower(x), d> == <x, col2im(d)> bit-exactly on integers.
        let s = ConvShape::square(2, 3, 6, 2, 3, 2, 1).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 41);
        let d = Matrix::<i64>::from_fn(s.lowered_rows(), s.lowered_cols(), |r, c| {
            ((r * 31 + c * 7) % 13) as i64 - 6
        });
        for order in ColumnOrder::ALL {
            let a = lower(&s, &x, order);
            let lhs: i64 = (0..a.rows())
                .flat_map(|r| (0..a.cols()).map(move |c| (r, c)))
                .map(|(r, c)| a[(r, c)] * d[(r, c)])
                .sum();
            let folded = col2im_accumulate(&s, &d, order);
            let rhs: i64 = ifmap_dims(&s)
                .iter()
                .map(|co| x.get(co) * folded.get(co))
                .sum();
            assert_eq!(lhs, rhs, "{order}");
        }
    }

    #[test]
    fn pointwise_lowering_is_reshape() {
        let s = ConvShape::square(1, 16, 7, 8, 1, 1, 0).unwrap();
        assert_eq!(s.duplication_factor(), 1.0);
        let x = Tensor::<f32>::random(ifmap_dims(&s), Layout::Nchw, 4);
        let a = lower(&s, &x, ColumnOrder::ChannelFirst);
        assert_eq!(a.shape(), (49, 16));
    }
}
