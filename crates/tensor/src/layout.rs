//! Memory layouts for 4-D feature-map tensors.
//!
//! The paper's central trick is a layout change: storing IFMaps **channel
//! first** (`HWC` on chip, `HWCN` with batching) instead of the conventional
//! `CHW`, so that one SRAM word holds the same spatial position across
//! channels (and batch items). This module defines the layouts, their
//! linearization, and the *contiguous-run* analysis that the DRAM model uses
//! to score access patterns (paper Fig. 7).

use std::fmt;

/// Logical coordinates of one feature-map element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Batch index.
    pub n: usize,
    /// Channel index.
    pub c: usize,
    /// Row (height) index.
    pub h: usize,
    /// Column (width) index.
    pub w: usize,
}

impl Coord {
    /// Construct a coordinate.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(n{},c{},h{},w{})", self.n, self.c, self.h, self.w)
    }
}

/// Extents of a 4-D feature-map tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims {
    /// Batch extent.
    pub n: usize,
    /// Channel extent.
    pub c: usize,
    /// Height extent.
    pub h: usize,
    /// Width extent.
    pub w: usize,
}

impl Dims {
    /// Construct dims.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// True when any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `coord` is within these extents.
    pub fn contains(&self, coord: Coord) -> bool {
        coord.n < self.n && coord.c < self.c && coord.h < self.h && coord.w < self.w
    }

    /// Iterate over every coordinate in row-major `n, c, h, w` order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let d = *self;
        (0..d.n).flat_map(move |n| {
            (0..d.c).flat_map(move |c| {
                (0..d.h).flat_map(move |h| (0..d.w).map(move |w| Coord::new(n, c, h, w)))
            })
        })
    }
}

/// The four tensor axes, used to describe layout orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Batch.
    N,
    /// Channel.
    C,
    /// Height.
    H,
    /// Width.
    W,
}

impl Axis {
    fn extent(self, d: Dims) -> usize {
        match self {
            Axis::N => d.n,
            Axis::C => d.c,
            Axis::H => d.h,
            Axis::W => d.w,
        }
    }
}

/// A memory layout: the order in which the four axes are linearized.
///
/// Named by axis order from **slowest to fastest** varying, i.e. `Nchw`
/// means the `w` index is contiguous in memory. The paper contrasts:
///
/// * [`Layout::Nchw`] — "CHW", the conventional framework layout; the
///   channel-*last* lowered order maps naturally onto it.
/// * [`Layout::Nhwc`] — "HWC", the channel-first on-chip layout of Sec. III:
///   one word holds all channels of one pixel.
/// * [`Layout::Hwcn`] — "HWCN", the batched variant of Sec. IV used to fill
///   a TPU vector-memory word with 8 batch items.
///
/// # Examples
///
/// ```
/// # use iconv_tensor::{Layout, Dims, Coord};
/// let d = Dims::new(2, 8, 5, 5);
/// // In HWCN the batch index is contiguous:
/// let a = Layout::Hwcn.offset(d, Coord::new(0, 3, 2, 2));
/// let b = Layout::Hwcn.offset(d, Coord::new(1, 3, 2, 2));
/// assert_eq!(b, a + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Batch, channel, height, width (a.k.a. "CHW" per image).
    #[default]
    Nchw,
    /// Batch, height, width, channel (a.k.a. "HWC" per image) — the
    /// channel-first on-chip layout.
    Nhwc,
    /// Channel, height, width, batch.
    Chwn,
    /// Height, width, channel, batch — the TPU vector-memory layout.
    Hwcn,
}

impl Layout {
    /// All supported layouts.
    pub const ALL: [Layout; 4] = [Layout::Nchw, Layout::Nhwc, Layout::Chwn, Layout::Hwcn];

    /// Axis order from slowest to fastest varying.
    pub fn axes(self) -> [Axis; 4] {
        match self {
            Layout::Nchw => [Axis::N, Axis::C, Axis::H, Axis::W],
            Layout::Nhwc => [Axis::N, Axis::H, Axis::W, Axis::C],
            Layout::Chwn => [Axis::C, Axis::H, Axis::W, Axis::N],
            Layout::Hwcn => [Axis::H, Axis::W, Axis::C, Axis::N],
        }
    }

    /// The fastest-varying (innermost, memory-contiguous) axis.
    pub fn innermost(self) -> Axis {
        self.axes()[3]
    }

    /// Per-axis strides `(n, c, h, w)` in elements for a tensor of `dims`.
    pub fn strides(self, dims: Dims) -> [usize; 4] {
        let axes = self.axes();
        let mut stride_of = [0usize; 4];
        let mut acc = 1usize;
        for &axis in axes.iter().rev() {
            let slot = match axis {
                Axis::N => 0,
                Axis::C => 1,
                Axis::H => 2,
                Axis::W => 3,
            };
            stride_of[slot] = acc;
            acc *= axis.extent(dims);
        }
        stride_of
    }

    /// Linear offset of `coord` in a tensor of `dims`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `coord` is out of bounds.
    pub fn offset(self, dims: Dims, coord: Coord) -> usize {
        debug_assert!(dims.contains(coord), "{coord} out of bounds for {dims:?}");
        let [sn, sc, sh, sw] = self.strides(dims);
        coord.n * sn + coord.c * sc + coord.h * sh + coord.w * sw
    }

    /// Inverse of [`Layout::offset`].
    ///
    /// # Panics
    ///
    /// Panics if `offset >= dims.len()`.
    pub fn coord(self, dims: Dims, offset: usize) -> Coord {
        assert!(offset < dims.len(), "offset {offset} out of range");
        let axes = self.axes();
        let mut rem = offset;
        let mut vals = [0usize; 4];
        // Peel from the outermost axis inward.
        for (i, _axis) in axes.iter().enumerate() {
            let inner: usize = axes[i + 1..].iter().map(|a| a.extent(dims)).product();
            vals[i] = rem / inner;
            rem %= inner;
        }
        let mut c = Coord::new(0, 0, 0, 0);
        for (i, &axis) in axes.iter().enumerate() {
            match axis {
                Axis::N => c.n = vals[i],
                Axis::C => c.c = vals[i],
                Axis::H => c.h = vals[i],
                Axis::W => c.w = vals[i],
            }
        }
        c
    }

    /// Length (in elements) of the contiguous run obtained when reading a
    /// dense block of `count` elements along `axis` starting anywhere.
    ///
    /// This is the quantity that decides DRAM efficiency in paper Fig. 7:
    /// reading `Ci` channels of one pixel is fully contiguous under `HWC`
    /// (run = `Ci`) but maximally scattered under `CHW` (run = 1).
    pub fn run_len_along(self, dims: Dims, axis: Axis, count: usize) -> usize {
        let [sn, sc, sh, sw] = self.strides(dims);
        let stride = match axis {
            Axis::N => sn,
            Axis::C => sc,
            Axis::H => sh,
            Axis::W => sw,
        };
        if stride == 1 {
            count.min(axis.extent(dims))
        } else {
            1
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layout::Nchw => "NCHW",
            Layout::Nhwc => "NHWC",
            Layout::Chwn => "CHWN",
            Layout::Hwcn => "HWCN",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: Dims = Dims {
        n: 2,
        c: 3,
        h: 4,
        w: 5,
    };

    #[test]
    fn strides_nchw() {
        assert_eq!(Layout::Nchw.strides(DIMS), [3 * 4 * 5, 4 * 5, 5, 1]);
    }

    #[test]
    fn strides_nhwc() {
        assert_eq!(Layout::Nhwc.strides(DIMS), [4 * 5 * 3, 1, 5 * 3, 3]);
    }

    #[test]
    fn strides_hwcn() {
        // H slowest: stride = w*c*n; then W: c*n; then C: n; N contiguous.
        assert_eq!(Layout::Hwcn.strides(DIMS), [1, 2, 5 * 3 * 2, 3 * 2]);
    }

    #[test]
    fn offset_roundtrip_all_layouts() {
        for layout in Layout::ALL {
            for coord in DIMS.iter() {
                let off = layout.offset(DIMS, coord);
                assert!(off < DIMS.len());
                assert_eq!(layout.coord(DIMS, off), coord, "layout {layout}");
            }
        }
    }

    #[test]
    fn offsets_are_a_permutation() {
        for layout in Layout::ALL {
            let mut seen = vec![false; DIMS.len()];
            for coord in DIMS.iter() {
                let off = layout.offset(DIMS, coord);
                assert!(!seen[off], "duplicate offset {off} in {layout}");
                seen[off] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn channel_contiguity() {
        // HWC: channels of one pixel are contiguous.
        assert_eq!(Layout::Nhwc.run_len_along(DIMS, Axis::C, 3), 3);
        // CHW: they are not.
        assert_eq!(Layout::Nchw.run_len_along(DIMS, Axis::C, 3), 1);
        // CHW: width is contiguous.
        assert_eq!(Layout::Nchw.run_len_along(DIMS, Axis::W, 5), 5);
        // HWCN: batch is contiguous.
        assert_eq!(Layout::Hwcn.run_len_along(DIMS, Axis::N, 2), 2);
    }

    #[test]
    fn run_len_clamped_to_extent() {
        assert_eq!(Layout::Nhwc.run_len_along(DIMS, Axis::C, 100), 3);
    }

    #[test]
    fn dims_iter_covers_all() {
        assert_eq!(DIMS.iter().count(), DIMS.len());
        let mut prev = None;
        for c in DIMS.iter() {
            if let Some(p) = prev {
                assert!(c > p, "iteration must be strictly increasing");
            }
            prev = Some(c);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Layout::Hwcn.to_string(), "HWCN");
        assert_eq!(Layout::default().to_string(), "NCHW");
    }
}
