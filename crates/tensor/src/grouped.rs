//! Grouped and depthwise convolution, expressed over the existing dense
//! machinery.
//!
//! A grouped convolution with `G` groups splits the channels: group `g`
//! convolves input channels `[g·Ci/G, (g+1)·Ci/G)` with its own filters to
//! produce output channels `[g·Co/G, (g+1)·Co/G)`. Depthwise convolution is
//! the extreme `G = Ci` (one channel per group). Everything here reduces a
//! grouped problem to `G` independent dense [`ConvShape`] problems, so all
//! lowering algorithms, simulators and gradients apply per group unchanged —
//! which is also exactly how GEMM accelerators execute them, and why
//! depthwise layers underutilize them so badly (each per-group GEMM has
//! `K = Ci/G` reduction depth; at `G = Ci` that is `K = Hf·Wf`).

use crate::conv_ref::{filter_dims, ifmap_dims, ofmap_dims};
use crate::layout::{Coord, Dims, Layout};
use crate::shape::{ConvShape, ShapeError};
use crate::tensor::{Scalar, Tensor};

/// A grouped convolution: a dense [`ConvShape`] plus a group count that
/// divides both channel extents.
/// # Examples
///
/// ```
/// # use iconv_tensor::{ConvShape, GroupedConv};
/// # fn main() -> Result<(), iconv_tensor::ShapeError> {
/// let dense = ConvShape::square(1, 32, 14, 32, 3, 1, 1)?;
/// let dw = GroupedConv::depthwise(dense, 1)?;
/// assert!(dw.is_depthwise());
/// assert_eq!(dw.macs(), dense.macs() / 32); // 1/Ci of the dense work
/// # Ok(()) }
/// ```
///

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupedConv {
    /// The *full* shape (total `ci`, total `co`).
    pub shape: ConvShape,
    /// Number of groups (`1` = dense, `ci` = depthwise).
    pub groups: usize,
}

impl GroupedConv {
    /// Create a grouped convolution.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `groups` is zero or does not divide both
    /// `ci` and `co`.
    pub fn new(shape: ConvShape, groups: usize) -> Result<Self, ShapeError> {
        if groups == 0 {
            return Err(ShapeError::new("groups must be non-zero"));
        }
        if !shape.ci.is_multiple_of(groups) || !shape.co.is_multiple_of(groups) {
            return Err(ShapeError::new(format!(
                "groups {groups} must divide ci {} and co {}",
                shape.ci, shape.co
            )));
        }
        Ok(Self { shape, groups })
    }

    /// Depthwise convolution: one group per input channel, `multiplier`
    /// outputs per channel.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on invalid dims.
    pub fn depthwise(shape: ConvShape, multiplier: usize) -> Result<Self, ShapeError> {
        let mut s = shape;
        s.co = shape.ci * multiplier;
        Self::new(s, shape.ci)
    }

    /// The dense sub-problem every group solves: `ci/G → co/G` channels.
    pub fn group_shape(&self) -> ConvShape {
        ConvShape {
            ci: self.shape.ci / self.groups,
            co: self.shape.co / self.groups,
            ..self.shape
        }
    }

    /// True when this is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.groups == self.shape.ci
    }

    /// MACs — `1/G` of the dense shape's.
    pub fn macs(&self) -> u64 {
        self.group_shape().macs() * self.groups as u64
    }

    /// FLOPs (2 per MAC).
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Filter dims: `Co × (Ci/G) × Hf × Wf`.
    pub fn filter_dims(&self) -> Dims {
        Dims::new(
            self.shape.co,
            self.shape.ci / self.groups,
            self.shape.hf,
            self.shape.wf,
        )
    }

    /// Extract group `g`'s IFMap slice as a standalone tensor.
    ///
    /// # Panics
    ///
    /// Panics if `g >= groups` or dims mismatch.
    pub fn slice_ifmap<T: Scalar>(&self, ifmap: &Tensor<T>, g: usize) -> Tensor<T> {
        assert!(g < self.groups, "group {g} out of range");
        assert_eq!(ifmap.dims(), ifmap_dims(&self.shape), "ifmap dims mismatch");
        let gs = self.group_shape();
        let base = g * gs.ci;
        Tensor::from_fn(ifmap_dims(&gs), ifmap.layout(), |c| {
            ifmap.get(Coord::new(c.n, base + c.c, c.h, c.w))
        })
    }

    /// Extract group `g`'s filter slice.
    ///
    /// # Panics
    ///
    /// Panics if `g >= groups` or dims mismatch.
    pub fn slice_filter<T: Scalar>(&self, filter: &Tensor<T>, g: usize) -> Tensor<T> {
        assert!(g < self.groups, "group {g} out of range");
        assert_eq!(filter.dims(), self.filter_dims(), "filter dims mismatch");
        let gs = self.group_shape();
        let base = g * gs.co;
        Tensor::from_fn(filter_dims(&gs), filter.layout(), |c| {
            filter.get(Coord::new(base + c.n, c.c, c.h, c.w))
        })
    }

    /// Grouped convolution by reduction to `G` dense convolutions through
    /// `conv_one_group` (any dense algorithm — direct, explicit, implicit).
    ///
    /// # Panics
    ///
    /// Panics on dims mismatch.
    pub fn conv_with<T: Scalar>(
        &self,
        ifmap: &Tensor<T>,
        filter: &Tensor<T>,
        mut conv_one_group: impl FnMut(&ConvShape, &Tensor<T>, &Tensor<T>) -> Tensor<T>,
    ) -> Tensor<T> {
        assert_eq!(filter.dims(), self.filter_dims(), "filter dims mismatch");
        let gs = self.group_shape();
        let mut out = Tensor::zeros(ofmap_dims(&self.shape), Layout::Nchw);
        for g in 0..self.groups {
            let x = self.slice_ifmap(ifmap, g);
            let f = self.slice_filter(filter, g);
            let y = conv_one_group(&gs, &x, &f);
            debug_assert_eq!(y.dims(), ofmap_dims(&gs));
            let base = g * gs.co;
            for c in y.dims().iter() {
                out.set(Coord::new(c.n, base + c.c, c.h, c.w), y.get(c));
            }
        }
        out
    }

    /// Grouped convolution via the direct reference (golden model).
    pub fn direct_conv<T: Scalar>(&self, ifmap: &Tensor<T>, filter: &Tensor<T>) -> Tensor<T> {
        self.conv_with(ifmap, filter, |s, x, f| {
            crate::conv_ref::direct_conv(s, x, f)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::conv_explicit;
    use crate::ColumnOrder;

    fn grouped(g: usize) -> GroupedConv {
        let shape = ConvShape::square(2, 8, 6, 12, 3, 1, 1).unwrap();
        GroupedConv::new(shape, g).unwrap()
    }

    #[test]
    fn group_1_equals_dense() {
        let gc = grouped(1);
        let x = Tensor::<i64>::random(ifmap_dims(&gc.shape), Layout::Nchw, 1);
        let f = Tensor::<i64>::random(filter_dims(&gc.shape), Layout::Nchw, 2);
        let dense = crate::conv_ref::direct_conv(&gc.shape, &x, &f);
        assert!(dense.approx_eq(&gc.direct_conv(&x, &f), 0.0));
    }

    #[test]
    fn grouped_equals_masked_dense() {
        // A grouped conv equals a dense conv whose filter is zero outside
        // the block-diagonal channel structure.
        let gc = grouped(4);
        let x = Tensor::<i64>::random(ifmap_dims(&gc.shape), Layout::Nchw, 3);
        let fg = Tensor::<i64>::random(gc.filter_dims(), Layout::Nchw, 4);
        let got = gc.direct_conv(&x, &fg);
        // Build the equivalent block-diagonal dense filter.
        let gs = gc.group_shape();
        let fd = Tensor::<i64>::from_fn(filter_dims(&gc.shape), Layout::Nchw, |c| {
            let g_out = c.n / gs.co;
            let g_in = c.c / gs.ci;
            if g_out == g_in {
                fg.get(Coord::new(c.n, c.c % gs.ci, c.h, c.w))
            } else {
                0
            }
        });
        let want = crate::conv_ref::direct_conv(&gc.shape, &x, &fd);
        assert!(want.approx_eq(&got, 0.0));
    }

    #[test]
    fn any_dense_algorithm_works_per_group() {
        let gc = grouped(2);
        let x = Tensor::<i64>::random(ifmap_dims(&gc.shape), Layout::Nchw, 5);
        let f = Tensor::<i64>::random(gc.filter_dims(), Layout::Nchw, 6);
        let want = gc.direct_conv(&x, &f);
        let got = gc.conv_with(&x, &f, |s, xi, fi| {
            conv_explicit(s, xi, fi, ColumnOrder::ChannelFirst)
        });
        assert!(want.approx_eq(&got, 0.0));
    }

    #[test]
    fn depthwise_constructor_and_flops() {
        let base = ConvShape::square(1, 32, 14, 32, 3, 1, 1).unwrap();
        let dw = GroupedConv::depthwise(base, 1).unwrap();
        assert!(dw.is_depthwise());
        assert_eq!(dw.groups, 32);
        assert_eq!(dw.group_shape().ci, 1);
        // Depthwise MACs = dense / Ci.
        assert_eq!(dw.macs(), base.macs() / 32);
    }

    #[test]
    fn depthwise_channels_are_independent() {
        let base = ConvShape::square(1, 4, 5, 4, 3, 1, 0).unwrap();
        let dw = GroupedConv::depthwise(base, 1).unwrap();
        let mut x = Tensor::<i64>::random(ifmap_dims(&dw.shape), Layout::Nchw, 7);
        let f = Tensor::<i64>::random(dw.filter_dims(), Layout::Nchw, 8);
        let y0 = dw.direct_conv(&x, &f);
        // Perturb channel 3: only output channel 3 may change.
        x.set(Coord::new(0, 3, 2, 2), 999);
        let y1 = dw.direct_conv(&x, &f);
        for c in y0.dims().iter() {
            if c.c != 3 {
                assert_eq!(y0.get(c), y1.get(c), "channel {} leaked", c.c);
            }
        }
        assert!(!y0.approx_eq(&y1, 0.0));
    }

    #[test]
    fn bad_group_counts_rejected() {
        let shape = ConvShape::square(1, 8, 6, 12, 3, 1, 1).unwrap();
        assert!(GroupedConv::new(shape, 0).is_err());
        assert!(GroupedConv::new(shape, 5).is_err()); // divides neither
        assert!(GroupedConv::new(shape, 3).is_err()); // divides co only
    }
}
