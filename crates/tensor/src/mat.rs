//! Row-major matrices and the reference GEMM used by every algorithm path.

use crate::tensor::Scalar;
use std::fmt;

/// k-panel depth for [`Matrix::matmul`]: 64 rhs rows of f32 at N ≤ 1024
/// stay within a 256 KiB L2 slice while amortizing the loop overhead.
const GEMM_PANEL: usize = 64;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// # use iconv_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T = f32> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// A matrix whose `(r, c)` element is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let ncols = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == ncols), "ragged rows");
        Self {
            rows: rows.len(),
            cols: ncols,
            data: rows.concat(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { T::one() } else { T::zero() })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Reorder columns: output column `j` is input column `perm[j]`.
    ///
    /// This is the operation underlying the paper's correctness argument for
    /// channel-first im2col: permuting the columns of the lowered IFMap (and
    /// the rows of the filter matrix identically) leaves the GEMM result
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.cols()` or `perm` is not a permutation.
    pub fn permute_cols(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.cols, "permutation length mismatch");
        let mut seen = vec![false; self.cols];
        for &p in perm {
            assert!(p < self.cols && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Self::from_fn(self.rows, self.cols, |r, c| self[(r, perm[c])])
    }

    /// Reorder rows: output row `i` is input row `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.rows()` or `perm` is not a permutation.
    pub fn permute_rows(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        self.transpose().permute_cols(perm).transpose()
    }

    /// Reference GEMM: `self · rhs`.
    ///
    /// Internally k-panel blocked: every row of `self` consumes one
    /// cache-resident panel of `rhs` rows before the next panel is touched.
    /// Per output element contributions still arrive in ascending-`k` order,
    /// so results are bit-identical to the plain `i-k-j` triple loop for
    /// floats as well as integers.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "GEMM shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k_dim, n) = (self.cols, rhs.cols);
        let mut out = Self::zeros(self.rows, n);
        for k0 in (0..k_dim).step_by(GEMM_PANEL) {
            let kend = (k0 + GEMM_PANEL).min(k_dim);
            for i in 0..self.rows {
                let arow = &self.data[i * k_dim..(i + 1) * k_dim];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (kk, &a) in arow[k0..kend].iter().enumerate() {
                    if a == T::zero() {
                        continue;
                    }
                    let rrow = &rhs.data[(k0 + kk) * n..(k0 + kk + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(rrow) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// Cache-blocked GEMM with `bs × bs` tiles; equals [`Matrix::matmul`].
    ///
    /// Exists both as a faster path for the simulators' functional checks and
    /// as the reference for the blocked schedules in `iconv-gpusim`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `bs == 0`.
    pub fn matmul_blocked(&self, rhs: &Self, bs: usize) -> Self {
        assert!(bs > 0, "block size must be non-zero");
        assert_eq!(self.cols, rhs.rows, "GEMM shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Self::zeros(m, n);
        for i0 in (0..m).step_by(bs) {
            for k0 in (0..k).step_by(bs) {
                for j0 in (0..n).step_by(bs) {
                    let jend = (j0 + bs).min(n);
                    let kend = (k0 + bs).min(k);
                    for i in i0..(i0 + bs).min(m) {
                        let arow = &self.data[i * k..(i + 1) * k];
                        let orow = &mut out.data[i * n + j0..i * n + jend];
                        for (kk, &a) in arow[k0..kend].iter().enumerate() {
                            let rbase = (k0 + kk) * n;
                            let rrow = &rhs.data[rbase + j0..rbase + jend];
                            for (o, &b) in orow.iter_mut().zip(rrow) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Maximum absolute elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// True when all elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, " {:?}", self[(r, c)])?;
            }
            writeln!(f, " {}]", if self.cols > 12 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix<i64>, Matrix<i64>) {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as i64);
        let b = Matrix::from_fn(4, 5, |r, c| (r as i64) - (c as i64));
        (a, b)
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1i64, 2][..], &[3, 4][..]]);
        let b = Matrix::from_rows(&[&[5i64, 6][..], &[7, 8][..]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = small();
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn blocked_equals_reference() {
        let (a, b) = small();
        let want = a.matmul(&b);
        for bs in [1, 2, 3, 4, 7, 64] {
            assert_eq!(a.matmul_blocked(&b, bs), want, "bs={bs}");
        }
    }

    #[test]
    fn transpose_involution() {
        let (a, _) = small();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (4, 3));
    }

    #[test]
    fn permutation_invariance_of_gemm() {
        // (A P)(Pᵀ B) == A B for any column permutation P of A matched by the
        // same row permutation of B — the paper's Sec. III-A correctness
        // argument.
        let (a, b) = small();
        let perm = [2usize, 0, 3, 1];
        let ap = a.permute_cols(&perm);
        let bp = b.permute_rows(&perm);
        assert_eq!(ap.matmul(&bp), a.matmul(&b));
    }

    #[test]
    fn permute_rows_matches_manual() {
        let a = Matrix::from_rows(&[&[1i32][..], &[2][..], &[3][..]]);
        let p = a.permute_rows(&[2, 0, 1]);
        assert_eq!(p.as_slice(), &[3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        let (a, _) = small();
        let _ = a.permute_cols(&[0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "GEMM shape mismatch")]
    fn shape_mismatch_panics() {
        let (a, _) = small();
        let _ = a.matmul(&Matrix::<i64>::identity(3));
    }

    #[test]
    fn zero_sized_matrices() {
        let a = Matrix::<f32>::zeros(0, 4);
        let b = Matrix::<f32>::zeros(4, 0);
        assert!(a.is_empty());
        let c = a.matmul(&Matrix::<f32>::zeros(4, 2));
        assert_eq!(c.shape(), (0, 2));
        let d = Matrix::<f32>::zeros(2, 4).matmul(&b);
        assert_eq!(d.shape(), (2, 0));
    }
}
