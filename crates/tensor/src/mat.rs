//! Row-major matrices and the packed GEMM used by every algorithm path.

use crate::tensor::Scalar;
use std::fmt;

/// Microkernel tile height: rows of A held in registers per inner loop.
const GEMM_MR: usize = 4;
/// Microkernel tile width: columns of B held in registers per inner loop.
/// `4 × 8` keeps the 32 f32 accumulators within the 16-register vector file
/// on both codegen paths: 8 × 128-bit on the baseline (SSE2) build, 4 ×
/// 256-bit on the runtime-dispatched AVX2 path, with room left for the A
/// broadcast and the B row load. Measured best-of-class at n ∈ 64..256 on
/// both paths (see DESIGN.md §7).
const GEMM_NR: usize = 8;

/// Row-count threshold below which [`Matrix::par_matmul`] runs on the
/// calling thread: spawning workers costs more than the GEMM saves.
const PAR_MIN_ROWS: usize = 64;

/// Reusable packing buffers for [`Matrix::matmul_with`] /
/// [`Matrix::matmul_into`].
///
/// The packed kernel copies A into `MR`-row panels and B into `NR`-column
/// panels before the register-blocked inner loop runs. Threading one
/// workspace through repeated multiplies (the simulators' functional-check
/// sweeps call GEMM thousands of times at identical shapes) means the panel
/// buffers are allocated once and then only grown, never churned: after the
/// first call at the largest shape, steady-state GEMMs perform **zero**
/// heap allocations (pinned by `crates/tensor/tests/alloc_counting.rs`).
#[derive(Debug, Default)]
pub struct GemmWorkspace<T> {
    apack: Vec<T>,
    bpack: Vec<T>,
}

impl<T: Scalar> GemmWorkspace<T> {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self {
            apack: Vec::new(),
            bpack: Vec::new(),
        }
    }
}

/// Pack rows `i0 .. i0 + m_eff` of row-major `a` (leading dimension `k`)
/// into one `MR`-row panel at `dst`, layout `dst[ki * MR + r]`, zero-filling
/// the `m_eff .. MR` pad lanes (the buffer is reused across calls, so stale
/// lanes must be overwritten, not assumed zero).
fn pack_a_panel<T: Scalar>(a: &[T], k: usize, i0: usize, m_eff: usize, dst: &mut [T]) {
    debug_assert_eq!(dst.len(), k * GEMM_MR);
    for r in 0..m_eff {
        let row = &a[(i0 + r) * k..(i0 + r) * k + k];
        for (ki, &v) in row.iter().enumerate() {
            dst[ki * GEMM_MR + r] = v;
        }
    }
    if m_eff < GEMM_MR {
        for ki in 0..k {
            for lane in &mut dst[ki * GEMM_MR + m_eff..(ki + 1) * GEMM_MR] {
                *lane = T::zero();
            }
        }
    }
}

/// Pack columns `j0 .. j0 + n_eff` of row-major `b` (leading dimension `n`)
/// into one `NR`-column panel at `dst`, layout `dst[ki * NR + j]`,
/// zero-filling the `n_eff .. NR` pad lanes.
fn pack_b_panel<T: Scalar>(b: &[T], n: usize, k: usize, j0: usize, n_eff: usize, dst: &mut [T]) {
    debug_assert_eq!(dst.len(), k * GEMM_NR);
    for ki in 0..k {
        let src = &b[ki * n + j0..ki * n + j0 + n_eff];
        let row = &mut dst[ki * GEMM_NR..(ki + 1) * GEMM_NR];
        row[..n_eff].copy_from_slice(src);
        for lane in &mut row[n_eff..] {
            *lane = T::zero();
        }
    }
}

/// The register-blocked microkernel: one `MR × NR` output tile, full `k`
/// depth, accumulators live in registers for the whole panel walk.
///
/// Contributions arrive in ascending-`k` order with a single accumulator per
/// output element, so float rounding is bit-identical to the plain `i-k-j`
/// triple loop ([`Matrix::reference_gemm`]). Pad lanes multiply by packed
/// zeros and are masked out of the store, so ragged edges cannot perturb
/// (or overflow into) live elements.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // hot-path kernel ABI: flat scalars, no indirection
fn microkernel<T: Scalar>(
    apanel: &[T],
    bpanel: &[T],
    out: &mut [T],
    ldc: usize,
    i0: usize,
    j0: usize,
    m_eff: usize,
    n_eff: usize,
) {
    let mut acc = [[T::zero(); GEMM_NR]; GEMM_MR];
    for (a, b) in apanel
        .chunks_exact(GEMM_MR)
        .zip(bpanel.chunks_exact(GEMM_NR))
    {
        let a: &[T; GEMM_MR] = a.try_into().expect("panel chunk");
        let b: &[T; GEMM_NR] = b.try_into().expect("panel chunk");
        for r in 0..GEMM_MR {
            let ar = a[r];
            for j in 0..GEMM_NR {
                acc[r][j] += ar * b[j];
            }
        }
    }
    // Masked store of the live `m_eff × n_eff` corner. Each output element
    // is written exactly once (the panel covers the full k depth), so this
    // is a store, not an accumulate.
    for r in 0..m_eff {
        let row = &mut out[(i0 + r) * ldc + j0..(i0 + r) * ldc + j0 + n_eff];
        row.copy_from_slice(&acc[r][..n_eff]);
    }
}

/// [`microkernel`] recompiled with 256-bit vectors for CPUs that have them.
///
/// `avx2` alone is enabled — deliberately **not** `fma`: fused
/// multiply-adds round once where the scalar loop rounds twice, which would
/// break the bit-identity contract with [`Matrix::reference_gemm`]. Plain
/// `vmulps`/`vaddps` round each operation exactly like their scalar
/// counterparts, so widening the vectors cannot change a single result bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // mirrors the scalar kernel's signature
fn microkernel_avx2<T: Scalar>(
    apanel: &[T],
    bpanel: &[T],
    out: &mut [T],
    ldc: usize,
    i0: usize,
    j0: usize,
    m_eff: usize,
    n_eff: usize,
) {
    microkernel(apanel, bpanel, out, ldc, i0, j0, m_eff, n_eff)
}

/// True when the AVX2 microkernel can run on this CPU.
#[inline]
fn use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Packed GEMM core: `out[m × n] = a[m × k] · b[k × n]`, panels staged in
/// `ws`. `out` must be zero-initialized only when `k == 0` (every element is
/// stored otherwise); callers here always pass zeroed buffers.
fn packed_gemm_into<T: Scalar>(
    a: &[T],
    m: usize,
    k: usize,
    b: &[T],
    n: usize,
    ws: &mut GemmWorkspace<T>,
    out: &mut [T],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mpanels = m.div_ceil(GEMM_MR);
    let npanels = n.div_ceil(GEMM_NR);
    ws.apack.resize(mpanels * k * GEMM_MR, T::zero());
    ws.bpack.resize(npanels * k * GEMM_NR, T::zero());
    for ip in 0..mpanels {
        let i0 = ip * GEMM_MR;
        let m_eff = GEMM_MR.min(m - i0);
        pack_a_panel(
            a,
            k,
            i0,
            m_eff,
            &mut ws.apack[ip * k * GEMM_MR..(ip + 1) * k * GEMM_MR],
        );
    }
    for jp in 0..npanels {
        let j0 = jp * GEMM_NR;
        let n_eff = GEMM_NR.min(n - j0);
        pack_b_panel(
            b,
            n,
            k,
            j0,
            n_eff,
            &mut ws.bpack[jp * k * GEMM_NR..(jp + 1) * k * GEMM_NR],
        );
    }
    let avx2 = use_avx2();
    for ip in 0..mpanels {
        let i0 = ip * GEMM_MR;
        let m_eff = GEMM_MR.min(m - i0);
        let apanel = &ws.apack[ip * k * GEMM_MR..(ip + 1) * k * GEMM_MR];
        for jp in 0..npanels {
            let j0 = jp * GEMM_NR;
            let n_eff = GEMM_NR.min(n - j0);
            let bpanel = &ws.bpack[jp * k * GEMM_NR..(jp + 1) * k * GEMM_NR];
            #[cfg(target_arch = "x86_64")]
            if avx2 {
                // SAFETY: `use_avx2` verified the CPU supports avx2.
                unsafe { microkernel_avx2(apanel, bpanel, out, n, i0, j0, m_eff, n_eff) };
                continue;
            }
            let _ = avx2;
            microkernel(apanel, bpanel, out, n, i0, j0, m_eff, n_eff);
        }
    }
}

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// # use iconv_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T = f32> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// A matrix whose `(r, c)` element is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let ncols = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == ncols), "ragged rows");
        Self {
            rows: rows.len(),
            cols: ncols,
            data: rows.concat(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { T::one() } else { T::zero() })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Reorder columns: output column `j` is input column `perm[j]`.
    ///
    /// This is the operation underlying the paper's correctness argument for
    /// channel-first im2col: permuting the columns of the lowered IFMap (and
    /// the rows of the filter matrix identically) leaves the GEMM result
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.cols()` or `perm` is not a permutation.
    pub fn permute_cols(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.cols, "permutation length mismatch");
        let mut seen = vec![false; self.cols];
        for &p in perm {
            assert!(p < self.cols && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Self::from_fn(self.rows, self.cols, |r, c| self[(r, perm[c])])
    }

    /// Reorder rows: output row `i` is input row `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.rows()` or `perm` is not a permutation.
    pub fn permute_rows(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        self.transpose().permute_cols(perm).transpose()
    }

    /// GEMM: `self · rhs`, via the packed register-blocked kernel.
    ///
    /// A is packed into `MR`-row panels and B into `NR`-column panels, then
    /// an `MR × NR` register-tile microkernel walks each panel pair over the
    /// full `k` depth. Per output element contributions arrive in
    /// ascending-`k` order into a single accumulator, so results are
    /// bit-identical to the plain `i-k-j` triple loop
    /// ([`Matrix::reference_gemm`]) for floats as well as integers — pinned
    /// by the proptests.
    ///
    /// Allocates a fresh [`GemmWorkspace`]; hot loops that multiply
    /// repeatedly should hold one and call [`Matrix::matmul_with`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        self.matmul_with(rhs, &mut GemmWorkspace::new())
    }

    /// [`Matrix::matmul`] with caller-provided packing buffers.
    ///
    /// Reusing `ws` across calls eliminates all per-call allocations except
    /// the output matrix itself.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_with(&self, rhs: &Self, ws: &mut GemmWorkspace<T>) -> Self {
        let mut out = Self::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, ws, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-provided output matrix: the fully
    /// allocation-free steady-state path.
    ///
    /// `out` is overwritten (every element is stored; prior contents are
    /// ignored), except when `self.cols() == 0`, where the product is the
    /// zero matrix and `out` is zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` is not
    /// `self.rows() × rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Self, ws: &mut GemmWorkspace<T>, out: &mut Self) {
        assert_eq!(
            self.cols, rhs.rows,
            "GEMM shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "GEMM output shape mismatch"
        );
        if self.cols == 0 {
            out.data.fill(T::zero());
            return;
        }
        packed_gemm_into(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            ws,
            &mut out.data,
        );
    }

    /// GEMM with the M dimension split across [`iconv_par::par_map`]
    /// workers.
    ///
    /// Each worker runs the packed kernel over a contiguous,
    /// `MR`-panel-aligned block of rows with its own workspace; row `i` of
    /// the output accumulates the exact same ascending-`k` sequence as in
    /// [`Matrix::matmul`], so the result is bit-identical regardless of
    /// worker count. Falls back to the serial kernel below `PAR_MIN_ROWS`
    /// (64) rows, where thread startup costs more than it saves.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn par_matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "GEMM shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        // default_jobs re-reads the environment and queries the scheduler on
        // every call; cache it so small-matrix fallbacks stay cheap.
        static PAR_JOBS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let jobs = *PAR_JOBS.get_or_init(iconv_par::default_jobs);
        if m < PAR_MIN_ROWS || jobs <= 1 || n == 0 || k == 0 {
            return self.matmul(rhs);
        }
        // MR-aligned row blocks so every worker sees whole panels.
        let panels = m.div_ceil(GEMM_MR);
        let per_job = panels.div_ceil(jobs) * GEMM_MR;
        let ranges: Vec<(usize, usize)> = (0..m)
            .step_by(per_job)
            .map(|r0| (r0, (r0 + per_job).min(m)))
            .collect();
        let parts = iconv_par::par_map(&ranges, |&(r0, r1)| {
            let rows = r1 - r0;
            let mut block = vec![T::zero(); rows * n];
            let mut ws = GemmWorkspace::new();
            packed_gemm_into(
                &self.data[r0 * k..r1 * k],
                rows,
                k,
                &rhs.data,
                n,
                &mut ws,
                &mut block,
            );
            block
        });
        Self {
            rows: m,
            cols: n,
            data: parts.concat(),
        }
    }

    /// Reference GEMM: the plain `i-k-j` triple loop, ascending `k`, one
    /// accumulator per output element.
    ///
    /// This is the accumulation-order oracle the packed kernel is pinned
    /// against (bit-identity, not approximate equality) and the baseline
    /// the `reference_gemm` benchmark group measures speedups from. It is
    /// deliberately unoptimized.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn reference_gemm(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "GEMM shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k_dim, n) = (self.cols, rhs.cols);
        let mut out = Self::zeros(self.rows, n);
        for i in 0..self.rows {
            let arow = &self.data[i * k_dim..(i + 1) * k_dim];
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate() {
                let rrow = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Cache-blocked GEMM with `bs × bs` tiles; equals [`Matrix::matmul`].
    ///
    /// Kept **only** as the loop-structure reference for the blocked
    /// schedules in `iconv-gpusim` — it mirrors the tile traversal those
    /// models cost. It is *not* a fast path (the packed kernel in
    /// [`Matrix::matmul`] replaced it; see `BENCH_baseline.json`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `bs == 0`.
    pub fn reference_blocked(&self, rhs: &Self, bs: usize) -> Self {
        assert!(bs > 0, "block size must be non-zero");
        assert_eq!(self.cols, rhs.rows, "GEMM shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Self::zeros(m, n);
        for i0 in (0..m).step_by(bs) {
            for k0 in (0..k).step_by(bs) {
                for j0 in (0..n).step_by(bs) {
                    let jend = (j0 + bs).min(n);
                    let kend = (k0 + bs).min(k);
                    for i in i0..(i0 + bs).min(m) {
                        let arow = &self.data[i * k..(i + 1) * k];
                        let orow = &mut out.data[i * n + j0..i * n + jend];
                        for (kk, &a) in arow[k0..kend].iter().enumerate() {
                            let rbase = (k0 + kk) * n;
                            let rrow = &rhs.data[rbase + j0..rbase + jend];
                            for (o, &b) in orow.iter_mut().zip(rrow) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Maximum absolute elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// True when all elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, " {:?}", self[(r, c)])?;
            }
            writeln!(f, " {}]", if self.cols > 12 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix<i64>, Matrix<i64>) {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as i64);
        let b = Matrix::from_fn(4, 5, |r, c| (r as i64) - (c as i64));
        (a, b)
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1i64, 2][..], &[3, 4][..]]);
        let b = Matrix::from_rows(&[&[5i64, 6][..], &[7, 8][..]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = small();
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn packed_equals_reference_on_ragged_shapes() {
        // Shapes straddling the MR=4 / NR=8 panel edges, including exact
        // multiples, one-off, and sub-panel cases.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 4, 5),
            (4, 8, 8),
            (5, 9, 9),
            (7, 13, 17),
            (8, 16, 24),
            (9, 1, 33),
        ] {
            let a = Matrix::from_fn(m, k, |r, c| (r * k + c) as i64 - 7);
            let b = Matrix::from_fn(k, n, |r, c| (r as i64) * 3 - (c as i64));
            assert_eq!(a.matmul(&b), a.reference_gemm(&b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_equals_reference() {
        let (a, b) = small();
        let want = a.reference_gemm(&b);
        for bs in [1, 2, 3, 4, 7, 64] {
            assert_eq!(a.reference_blocked(&b, bs), want, "bs={bs}");
        }
    }

    #[test]
    fn workspace_reuse_across_shapes() {
        // One workspace across growing then shrinking shapes must not leak
        // stale pad lanes into results.
        let mut ws = GemmWorkspace::new();
        for (m, k, n) in [(2, 3, 2), (9, 11, 13), (3, 2, 3), (6, 70, 5)] {
            let a = Matrix::from_fn(m, k, |r, c| (r + 2 * c) as i64 - 4);
            let b = Matrix::from_fn(k, n, |r, c| (3 * r) as i64 - c as i64);
            assert_eq!(a.matmul_with(&b, &mut ws), a.reference_gemm(&b));
        }
    }

    #[test]
    fn par_matmul_bit_identical() {
        let a = Matrix::<f32>::from_fn(70, 33, |r, c| (r * 33 + c) as f32 * 0.013 - 10.0);
        let b = Matrix::<f32>::from_fn(33, 21, |r, c| (r + c * 7) as f32 * 0.021 - 5.0);
        let serial = a.matmul(&b);
        let par = a.par_matmul(&b);
        assert_eq!(serial.as_slice(), par.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let (a, _) = small();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (4, 3));
    }

    #[test]
    fn permutation_invariance_of_gemm() {
        // (A P)(Pᵀ B) == A B for any column permutation P of A matched by the
        // same row permutation of B — the paper's Sec. III-A correctness
        // argument.
        let (a, b) = small();
        let perm = [2usize, 0, 3, 1];
        let ap = a.permute_cols(&perm);
        let bp = b.permute_rows(&perm);
        assert_eq!(ap.matmul(&bp), a.matmul(&b));
    }

    #[test]
    fn permute_rows_matches_manual() {
        let a = Matrix::from_rows(&[&[1i32][..], &[2][..], &[3][..]]);
        let p = a.permute_rows(&[2, 0, 1]);
        assert_eq!(p.as_slice(), &[3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        let (a, _) = small();
        let _ = a.permute_cols(&[0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "GEMM shape mismatch")]
    fn shape_mismatch_panics() {
        let (a, _) = small();
        let _ = a.matmul(&Matrix::<i64>::identity(3));
    }

    #[test]
    fn zero_sized_matrices() {
        let a = Matrix::<f32>::zeros(0, 4);
        let b = Matrix::<f32>::zeros(4, 0);
        assert!(a.is_empty());
        let c = a.matmul(&Matrix::<f32>::zeros(4, 2));
        assert_eq!(c.shape(), (0, 2));
        let d = Matrix::<f32>::zeros(2, 4).matmul(&b);
        assert_eq!(d.shape(), (2, 0));
        // k == 0: the product over an empty sum is the zero matrix.
        let e = Matrix::<f32>::zeros(2, 0).matmul(&Matrix::<f32>::zeros(0, 3));
        assert_eq!(e, Matrix::<f32>::zeros(2, 3));
    }

    #[test]
    fn matmul_into_overwrites_stale_output() {
        let (a, b) = small();
        let mut ws = GemmWorkspace::new();
        let mut out = Matrix::from_fn(3, 5, |_, _| 999i64);
        a.matmul_into(&b, &mut ws, &mut out);
        assert_eq!(out, a.reference_gemm(&b));
    }
}
