//! Convolution problem shapes and their derived quantities.
//!
//! [`ConvShape`] is the central description of a convolution layer used
//! throughout the workspace: the batch size, input/output channel counts,
//! spatial extents, filter extents, stride, padding and dilation. All other
//! crates (the im2col algebra, the simulators, the workload tables) consume
//! this type.

use std::fmt;

/// Error returned when a convolution shape is inconsistent.
///
/// Produced by [`ConvShape::new`] when a dimension is zero, or when the
/// filter (after dilation) does not fit into the padded input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    msg: String,
}

impl ShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid convolution shape: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A complete description of one convolution layer.
///
/// Dimension naming follows the paper: the IFMap is `N × Ci × Hi × Wi`, the
/// filter is `Co × Ci × Hf × Wf`, and the OFMap is `N × Co × Ho × Wo` where
/// `Ho`/`Wo` are derived via [`ConvShape::out_h`]/[`ConvShape::out_w`].
///
/// # Examples
///
/// ```
/// # use iconv_tensor::ConvShape;
/// # fn main() -> Result<(), iconv_tensor::ShapeError> {
/// // ResNet-50 conv1: 224x224x3 -> 112x112x64, 7x7 filter, stride 2, pad 3.
/// let conv1 = ConvShape::new(1, 3, 224, 224, 64, 7, 7).stride(2).pad(3).build()?;
/// assert_eq!((conv1.out_h(), conv1.out_w()), (112, 112));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size `N`.
    pub n: usize,
    /// Input channels `Ci`.
    pub ci: usize,
    /// Input height `Hi`.
    pub hi: usize,
    /// Input width `Wi`.
    pub wi: usize,
    /// Output channels `Co`.
    pub co: usize,
    /// Filter height `Hf`.
    pub hf: usize,
    /// Filter width `Wf`.
    pub wf: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Leading (top) vertical zero padding. All geometry in the workspace
    /// treats `pad_h` as the offset of the first input row; the trailing
    /// pad only widens the output range via [`ConvShape::out_h`].
    pub pad_h: usize,
    /// Leading (left) horizontal zero padding.
    pub pad_w: usize,
    /// Trailing (bottom) vertical zero padding. Equal to `pad_h` for the
    /// common symmetric case; [`ConvShapeBuilder::same_pad`] sets it one
    /// larger for even effective filters (framework "SAME" semantics).
    pub pad_h_end: usize,
    /// Trailing (right) horizontal zero padding.
    pub pad_w_end: usize,
    /// Vertical dilation (1 = dense filter).
    pub dil_h: usize,
    /// Horizontal dilation (1 = dense filter).
    pub dil_w: usize,
}

/// Builder for [`ConvShape`]; created by [`ConvShape::new`].
#[derive(Debug, Clone, Copy)]
pub struct ConvShapeBuilder {
    shape: ConvShape,
}

impl ConvShapeBuilder {
    /// Set both strides to `s`.
    pub fn stride(mut self, s: usize) -> Self {
        self.shape.stride_h = s;
        self.shape.stride_w = s;
        self
    }

    /// Set the strides individually.
    pub fn stride_hw(mut self, sh: usize, sw: usize) -> Self {
        self.shape.stride_h = sh;
        self.shape.stride_w = sw;
        self
    }

    /// Set all four paddings to `p` (symmetric).
    pub fn pad(mut self, p: usize) -> Self {
        self.shape.pad_h = p;
        self.shape.pad_w = p;
        self.shape.pad_h_end = p;
        self.shape.pad_w_end = p;
        self
    }

    /// Set the per-axis paddings (symmetric: trailing pads follow).
    pub fn pad_hw(mut self, ph: usize, pw: usize) -> Self {
        self.shape.pad_h = ph;
        self.shape.pad_w = pw;
        self.shape.pad_h_end = ph;
        self.shape.pad_w_end = pw;
        self
    }

    /// Override the trailing (bottom/right) paddings independently of the
    /// leading ones. Call after [`Self::pad`]/[`Self::pad_hw`], which reset
    /// both sides.
    pub fn pad_end_hw(mut self, ph_end: usize, pw_end: usize) -> Self {
        self.shape.pad_h_end = ph_end;
        self.shape.pad_w_end = pw_end;
        self
    }

    /// Set both dilations to `d`.
    pub fn dilation(mut self, d: usize) -> Self {
        self.shape.dil_h = d;
        self.shape.dil_w = d;
        self
    }

    /// Set the dilations individually.
    pub fn dilation_hw(mut self, dh: usize, dw: usize) -> Self {
        self.shape.dil_h = dh;
        self.shape.dil_w = dw;
        self
    }

    /// "Same" padding: choose padding so that `Ho = ceil(Hi/stride)`,
    /// exactly, for every effective filter size.
    ///
    /// For an *even* effective filter `f` there is no symmetric padding
    /// that hits the target, so this pads asymmetrically the way the
    /// frameworks do: `leading = (f−1)/2`, `trailing = f/2` (one more at
    /// the bottom/right). Odd filters get the familiar `f/2` on both
    /// sides — identical to the historical behavior. Callers that need
    /// the old symmetric rounding (which over-pads even filters by one
    /// row/column) can use [`Self::same_pad_symmetric`].
    pub fn same_pad(mut self) -> Self {
        let eff_h = self.shape.dil_h * (self.shape.hf - 1) + 1;
        let eff_w = self.shape.dil_w * (self.shape.wf - 1) + 1;
        self.shape.pad_h = (eff_h - 1) / 2;
        self.shape.pad_w = (eff_w - 1) / 2;
        self.shape.pad_h_end = eff_h / 2;
        self.shape.pad_w_end = eff_w / 2;
        self
    }

    /// The pre-asymmetric "same" padding: `pad = f/2` on both sides.
    ///
    /// Exact for odd effective filters; for even filters this over-pads by
    /// one, so a stride-1 layer comes out one larger (`Ho = Hi + 1`) —
    /// see `same_pad_symmetric_overshoots_for_even_filters`. Kept for
    /// callers that must reproduce historical symmetric-only geometry.
    pub fn same_pad_symmetric(mut self) -> Self {
        let eff_h = self.shape.dil_h * (self.shape.hf - 1) + 1;
        let eff_w = self.shape.dil_w * (self.shape.wf - 1) + 1;
        self.shape.pad_h = eff_h / 2;
        self.shape.pad_w = eff_w / 2;
        self.shape.pad_h_end = self.shape.pad_h;
        self.shape.pad_w_end = self.shape.pad_w;
        self
    }

    /// Validate and produce the final [`ConvShape`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any dimension, stride or dilation is zero,
    /// or if the dilated filter does not fit into the padded input.
    pub fn build(self) -> Result<ConvShape, ShapeError> {
        let s = self.shape;
        let dims = [
            ("n", s.n),
            ("ci", s.ci),
            ("hi", s.hi),
            ("wi", s.wi),
            ("co", s.co),
            ("hf", s.hf),
            ("wf", s.wf),
            ("stride_h", s.stride_h),
            ("stride_w", s.stride_w),
            ("dil_h", s.dil_h),
            ("dil_w", s.dil_w),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(ShapeError::new(format!("{name} must be non-zero")));
            }
        }
        let eff_h = s.dil_h * (s.hf - 1) + 1;
        let eff_w = s.dil_w * (s.wf - 1) + 1;
        if s.hi + s.pad_h + s.pad_h_end < eff_h {
            return Err(ShapeError::new(format!(
                "effective filter height {eff_h} exceeds padded input height {}",
                s.hi + s.pad_h + s.pad_h_end
            )));
        }
        if s.wi + s.pad_w + s.pad_w_end < eff_w {
            return Err(ShapeError::new(format!(
                "effective filter width {eff_w} exceeds padded input width {}",
                s.wi + s.pad_w + s.pad_w_end
            )));
        }
        Ok(s)
    }
}

impl ConvShape {
    /// Start building a shape from the seven core dimensions; stride and
    /// dilation default to 1, padding to 0.
    #[allow(clippy::new_ret_no_self)] // deliberately returns the builder
    pub fn new(
        n: usize,
        ci: usize,
        hi: usize,
        wi: usize,
        co: usize,
        hf: usize,
        wf: usize,
    ) -> ConvShapeBuilder {
        ConvShapeBuilder {
            shape: ConvShape {
                n,
                ci,
                hi,
                wi,
                co,
                hf,
                wf,
                stride_h: 1,
                stride_w: 1,
                pad_h: 0,
                pad_w: 0,
                pad_h_end: 0,
                pad_w_end: 0,
                dil_h: 1,
                dil_w: 1,
            },
        }
    }

    /// Convenience constructor for square spatial/filter dims.
    ///
    /// # Errors
    ///
    /// Same as [`ConvShapeBuilder::build`].
    pub fn square(
        n: usize,
        ci: usize,
        hw: usize,
        co: usize,
        f: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, ShapeError> {
        ConvShape::new(n, ci, hw, hw, co, f, f)
            .stride(stride)
            .pad(pad)
            .build()
    }

    /// Effective (dilated) filter height: `dil_h * (hf - 1) + 1`.
    pub fn eff_hf(&self) -> usize {
        self.dil_h * (self.hf - 1) + 1
    }

    /// Effective (dilated) filter width: `dil_w * (wf - 1) + 1`.
    pub fn eff_wf(&self) -> usize {
        self.dil_w * (self.wf - 1) + 1
    }

    /// Output height `Ho`.
    pub fn out_h(&self) -> usize {
        (self.hi + self.pad_h + self.pad_h_end - self.eff_hf()) / self.stride_h + 1
    }

    /// Output width `Wo`.
    pub fn out_w(&self) -> usize {
        (self.wi + self.pad_w + self.pad_w_end - self.eff_wf()) / self.stride_w + 1
    }

    /// True when either axis pads differently at the two ends (even-filter
    /// "SAME" geometry). Symmetric shapes render keys, wire encodings and
    /// display strings exactly as they always have; only asymmetric shapes
    /// carry the extra trailing-pad fields.
    pub fn has_asymmetric_pad(&self) -> bool {
        self.pad_h_end != self.pad_h || self.pad_w_end != self.pad_w
    }

    /// Number of rows of the lowered IFMap matrix: `N * Ho * Wo`.
    pub fn lowered_rows(&self) -> usize {
        self.n * self.out_h() * self.out_w()
    }

    /// Number of columns of the lowered IFMap matrix: `Hf * Wf * Ci`.
    pub fn lowered_cols(&self) -> usize {
        self.hf * self.wf * self.ci
    }

    /// Elements of the IFMap: `N * Ci * Hi * Wi`.
    pub fn ifmap_elems(&self) -> usize {
        self.n * self.ci * self.hi * self.wi
    }

    /// Elements of the filter tensor: `Co * Ci * Hf * Wf`.
    pub fn filter_elems(&self) -> usize {
        self.co * self.ci * self.hf * self.wf
    }

    /// Elements of the OFMap: `N * Co * Ho * Wo`.
    pub fn ofmap_elems(&self) -> usize {
        self.n * self.co * self.out_h() * self.out_w()
    }

    /// Elements of the (conceptual) lowered IFMap matrix.
    pub fn lowered_elems(&self) -> usize {
        self.lowered_rows() * self.lowered_cols()
    }

    /// Data duplication factor of explicit im2col: lowered elems / IFMap
    /// elems. Up to `Hf * Wf` for stride 1 (the paper's memory-overhead
    /// argument in Table I).
    pub fn duplication_factor(&self) -> f64 {
        self.lowered_elems() as f64 / self.ifmap_elems() as f64
    }

    /// Multiply–accumulate operations of the convolution.
    pub fn macs(&self) -> u64 {
        self.ofmap_elems() as u64 * (self.ci * self.hf * self.wf) as u64
    }

    /// Floating-point operations (2 per MAC), the figure-of-merit unit used
    /// for all TFLOPS numbers in the paper.
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Equivalent GEMM dimensions `(M, N, K)` after im2col lowering:
    /// `M = N·Ho·Wo`, `N = Co`, `K = Hf·Wf·Ci`.
    pub fn gemm_mnk(&self) -> (usize, usize, usize) {
        (self.lowered_rows(), self.co, self.lowered_cols())
    }

    /// True when the convolution is already a GEMM (1×1 filter, unit stride,
    /// no padding): the case where im2col degenerates to a reshape.
    pub fn is_pointwise(&self) -> bool {
        self.hf == 1
            && self.wf == 1
            && self.stride_h == 1
            && self.stride_w == 1
            && self.pad_h == 0
            && self.pad_w == 0
            && self.pad_h_end == 0
            && self.pad_w_end == 0
    }

    /// Shape of one batch item (`n = 1`), used when a simulator iterates
    /// batch items explicitly.
    pub fn single_batch(&self) -> ConvShape {
        ConvShape { n: 1, ..*self }
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N{} Ci{} {}x{} Co{} f{}x{} s{}x{} p{}x{}",
            self.n,
            self.ci,
            self.hi,
            self.wi,
            self.co,
            self.hf,
            self.wf,
            self.stride_h,
            self.stride_w,
            self.pad_h,
            self.pad_w
        )?;
        if self.has_asymmetric_pad() {
            write!(f, "+{}x{}", self.pad_h_end, self.pad_w_end)?;
        }
        if self.dil_h != 1 || self.dil_w != 1 {
            write!(f, " d{}x{}", self.dil_h, self.dil_w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_basic() {
        let s = ConvShape::square(1, 8, 5, 4, 3, 1, 0).unwrap();
        assert_eq!(s.out_h(), 3);
        assert_eq!(s.out_w(), 3);
    }

    #[test]
    fn output_dims_stride_pad() {
        // ResNet conv1.
        let s = ConvShape::square(1, 3, 224, 64, 7, 2, 3).unwrap();
        assert_eq!(s.out_h(), 112);
        assert_eq!(s.out_w(), 112);
    }

    #[test]
    fn output_dims_dilation() {
        let s = ConvShape::new(1, 1, 9, 9, 1, 3, 3)
            .dilation(2)
            .build()
            .unwrap();
        // effective filter = 5 -> out = 5
        assert_eq!(s.eff_hf(), 5);
        assert_eq!(s.out_h(), 5);
    }

    #[test]
    fn same_pad_keeps_size_for_odd_filters() {
        let s = ConvShape::new(1, 4, 14, 14, 4, 3, 3)
            .same_pad()
            .build()
            .unwrap();
        assert_eq!((s.out_h(), s.out_w()), (14, 14));
        let s = ConvShape::new(1, 4, 14, 14, 4, 5, 5)
            .same_pad()
            .build()
            .unwrap();
        assert_eq!((s.out_h(), s.out_w()), (14, 14));
    }

    /// Even effective filters have no symmetric "same" padding, so
    /// [`ConvShapeBuilder::same_pad`] pads asymmetrically — one more at the
    /// trailing edge, the framework convention — and hits the
    /// `Ho = ceil(Hi/stride)` target exactly.
    #[test]
    fn same_pad_is_exact_for_even_filters() {
        let s = ConvShape::new(1, 4, 14, 14, 4, 4, 4)
            .same_pad()
            .build()
            .unwrap();
        assert_eq!((s.pad_h, s.pad_w), (1, 1));
        assert_eq!((s.pad_h_end, s.pad_w_end), (2, 2));
        assert!(s.has_asymmetric_pad());
        assert_eq!((s.out_h(), s.out_w()), (14, 14));
        let s = ConvShape::new(1, 4, 14, 14, 4, 2, 2)
            .stride(2)
            .same_pad()
            .build()
            .unwrap();
        assert_eq!((s.pad_h, s.pad_h_end), (0, 1));
        assert_eq!((s.out_h(), s.out_w()), (7, 7)); // target: ceil(14/2) = 7
    }

    /// The historical symmetric rounding stays available, with the
    /// documented overshoot: `pad = f/2` on both sides adds one extra
    /// row/column, so stride 1 yields `Ho = Hi + 1` and stride 2 yields
    /// `Hi/2 + 1` rather than the `ceil(Hi/stride)` target.
    #[test]
    fn same_pad_symmetric_overshoots_for_even_filters() {
        let s = ConvShape::new(1, 4, 14, 14, 4, 4, 4)
            .same_pad_symmetric()
            .build()
            .unwrap();
        assert_eq!((s.pad_h, s.pad_w), (2, 2));
        assert!(!s.has_asymmetric_pad());
        assert_eq!((s.out_h(), s.out_w()), (15, 15));
        let s = ConvShape::new(1, 4, 14, 14, 4, 2, 2)
            .stride(2)
            .same_pad_symmetric()
            .build()
            .unwrap();
        assert_eq!((s.out_h(), s.out_w()), (8, 8));
    }

    /// Odd filters are unaffected by the asymmetric fix: both `same_pad`
    /// flavors produce identical symmetric shapes.
    #[test]
    fn same_pad_flavors_agree_on_odd_filters() {
        for f in [1usize, 3, 5, 7] {
            let a = ConvShape::new(1, 4, 14, 14, 4, f, f)
                .same_pad()
                .build()
                .unwrap();
            let b = ConvShape::new(1, 4, 14, 14, 4, f, f)
                .same_pad_symmetric()
                .build()
                .unwrap();
            assert_eq!(a, b, "f={f}");
            assert!(!a.has_asymmetric_pad(), "f={f}");
        }
    }

    /// Trailing pad participates in validation and output geometry: a
    /// filter that only fits thanks to the trailing pad builds, and the
    /// extra output positions come from the trailing edge.
    #[test]
    fn trailing_pad_extends_output() {
        let s = ConvShape::new(1, 1, 5, 5, 1, 3, 3)
            .pad_hw(0, 0)
            .pad_end_hw(2, 2)
            .build()
            .unwrap();
        assert_eq!((s.out_h(), s.out_w()), (5, 5));
        // Too-large filter fits once the trailing pad is counted.
        assert!(ConvShape::new(1, 1, 2, 2, 1, 3, 3)
            .pad_end_hw(1, 1)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(ConvShape::new(0, 1, 5, 5, 1, 3, 3).build().is_err());
        assert!(ConvShape::new(1, 1, 5, 5, 1, 0, 3).build().is_err());
        let err = ConvShape::new(1, 1, 5, 5, 1, 3, 3).stride(0).build();
        assert!(err.is_err());
    }

    #[test]
    fn filter_larger_than_input_rejected() {
        assert!(ConvShape::new(1, 1, 2, 2, 1, 3, 3).build().is_err());
        // ...but fits with padding.
        assert!(ConvShape::new(1, 1, 2, 2, 1, 3, 3).pad(1).build().is_ok());
    }

    #[test]
    fn lowered_dims_and_duplication() {
        let s = ConvShape::square(1, 8, 5, 4, 3, 1, 0).unwrap();
        assert_eq!(s.lowered_rows(), 9);
        assert_eq!(s.lowered_cols(), 72);
        // 9*72 / (8*25) = 3.24x duplication
        assert!((s.duplication_factor() - 3.24).abs() < 1e-9);
    }

    #[test]
    fn flops_match_gemm() {
        let s = ConvShape::square(2, 16, 14, 32, 3, 1, 1).unwrap();
        let (m, n, k) = s.gemm_mnk();
        assert_eq!(s.flops(), 2 * (m * n * k) as u64);
    }

    #[test]
    fn pointwise_detection() {
        assert!(ConvShape::square(1, 8, 5, 4, 1, 1, 0)
            .unwrap()
            .is_pointwise());
        assert!(!ConvShape::square(1, 8, 5, 4, 3, 1, 1)
            .unwrap()
            .is_pointwise());
        let strided_1x1 = ConvShape::square(1, 8, 5, 4, 1, 2, 0).unwrap();
        assert!(!strided_1x1.is_pointwise());
    }

    #[test]
    fn display_is_compact() {
        let s = ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap();
        let d = format!("{s}");
        assert!(d.contains("N8") && d.contains("f3x3"));
    }
}
