//! # iconv-tensor
//!
//! Tensor substrate for the `implicit-conv` workspace: convolution shapes,
//! feature-map layouts, dense tensors, the reference (direct) convolution,
//! reference GEMM, and the **explicit** im2col baseline.
//!
//! Everything downstream — the channel-first implicit im2col algebra in
//! `iconv-core`, the TPU simulator, the GPU model — is defined in terms of,
//! and tested against, the primitives here.
//!
//! ## Quick tour
//!
//! ```
//! use iconv_tensor::{conv_ref, im2col, ColumnOrder, ConvShape, Layout, Tensor};
//!
//! # fn main() -> Result<(), iconv_tensor::ShapeError> {
//! let shape = ConvShape::square(1, 8, 5, 4, 3, 1, 0)?; // the paper's Fig. 5 example
//! let x = Tensor::<f32>::random(conv_ref::ifmap_dims(&shape), Layout::Nhwc, 1);
//! let f = Tensor::<f32>::random(conv_ref::filter_dims(&shape), Layout::Nchw, 2);
//!
//! // Golden model:
//! let golden = conv_ref::direct_conv(&shape, &x, &f);
//! // Explicit im2col with the paper's channel-first column order:
//! let lowered = im2col::conv_explicit(&shape, &x, &f, ColumnOrder::ChannelFirst);
//! assert!(golden.approx_eq(&lowered, 1e-4));
//! # Ok(()) }
//! ```

pub mod conv_ref;
pub mod grouped;
pub mod im2col;
pub mod layout;
pub mod mat;
pub mod shape;
pub mod tensor;

pub use grouped::GroupedConv;
pub use im2col::{ColumnOrder, Tap};
pub use layout::{Axis, Coord, Dims, Layout};
pub use mat::{GemmWorkspace, Matrix};
pub use shape::{ConvShape, ConvShapeBuilder, ShapeError};
pub use tensor::{Scalar, Tensor};
