//! Reference direct convolution — the golden model every algorithm path in
//! this workspace is tested against.

use crate::layout::{Dims, Layout};
use crate::shape::ConvShape;
use crate::tensor::{Scalar, Tensor};

/// Extents of the filter tensor for `shape`, reusing [`Dims`] with the
/// convention `n = Co`, `c = Ci`, `h = Hf`, `w = Wf`.
pub fn filter_dims(shape: &ConvShape) -> Dims {
    Dims::new(shape.co, shape.ci, shape.hf, shape.wf)
}

/// Extents of the IFMap tensor for `shape`.
pub fn ifmap_dims(shape: &ConvShape) -> Dims {
    Dims::new(shape.n, shape.ci, shape.hi, shape.wi)
}

/// Extents of the OFMap tensor for `shape`.
pub fn ofmap_dims(shape: &ConvShape) -> Dims {
    Dims::new(shape.n, shape.co, shape.out_h(), shape.out_w())
}

/// The input pixel read by output pixel `(oh, ow)` at filter tap `(fh, fw)`,
/// or `None` when the tap lands in the zero padding.
///
/// This one function is the shared definition of convolution geometry;
/// the direct convolution below, the explicit im2col in
/// [`crate::im2col`], and the implicit algebra in `iconv-core` all agree
/// with it by construction or by test.
pub fn input_pixel(
    shape: &ConvShape,
    oh: usize,
    ow: usize,
    fh: usize,
    fw: usize,
) -> Option<(usize, usize)> {
    let h = (oh * shape.stride_h + fh * shape.dil_h).checked_sub(shape.pad_h)?;
    let w = (ow * shape.stride_w + fw * shape.dil_w).checked_sub(shape.pad_w)?;
    (h < shape.hi && w < shape.wi).then_some((h, w))
}

/// Direct convolution: the golden model.
///
/// `ifmap` must have dims [`ifmap_dims`]`(shape)` and `filter` dims
/// [`filter_dims`]`(shape)`. The result is produced in `NCHW` layout; inputs
/// may use any layout.
///
/// # Panics
///
/// Panics if tensor dims do not match `shape`.
///
/// # Examples
///
/// ```
/// # use iconv_tensor::{conv_ref, ConvShape, Tensor, Layout};
/// # fn main() -> Result<(), iconv_tensor::ShapeError> {
/// let shape = ConvShape::square(1, 8, 5, 4, 3, 1, 0)?;
/// let x = Tensor::<f32>::random(conv_ref::ifmap_dims(&shape), Layout::Nchw, 1);
/// let f = Tensor::<f32>::random(conv_ref::filter_dims(&shape), Layout::Nchw, 2);
/// let y = conv_ref::direct_conv(&shape, &x, &f);
/// assert_eq!(y.dims(), conv_ref::ofmap_dims(&shape));
/// # Ok(()) }
/// ```
pub fn direct_conv<T: Scalar>(
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
) -> Tensor<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
    // The hot loops below index raw NCHW buffers; non-NCHW inputs are
    // relaid out once up front, which is far cheaper than per-element
    // `layout.offset` arithmetic inside the seven-deep nest.
    let x_nchw;
    let x = if ifmap.layout() == Layout::Nchw {
        ifmap
    } else {
        x_nchw = ifmap.relayout(Layout::Nchw);
        &x_nchw
    };
    let f_nchw;
    let f = if filter.layout() == Layout::Nchw {
        filter
    } else {
        f_nchw = filter.relayout(Layout::Nchw);
        &f_nchw
    };
    let (hi, wi) = (shape.hi, shape.wi);
    let (hf, wf) = (shape.hf, shape.wf);
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    let xs = x.as_slice();
    let fs = f.as_slice();
    let mut out = Tensor::zeros(ofmap_dims(shape), Layout::Nchw);
    let os = out.as_mut_slice();
    // The output is written in NCHW order, which is exactly the iteration
    // order of the (n, co, oh, ow) nest — a single running index suffices.
    let mut o_idx = 0;
    for n in 0..shape.n {
        for co in 0..shape.co {
            for oh in 0..out_h {
                for ow in 0..out_w {
                    // Accumulation stays in (ci, fh, fw) lexicographic order
                    // with the same padding skips, so float results are
                    // bit-identical to the naive per-element formulation.
                    let mut acc = T::zero();
                    for ci in 0..shape.ci {
                        let xc = &xs[(n * shape.ci + ci) * hi * wi..][..hi * wi];
                        let fc = &fs[(co * shape.ci + ci) * hf * wf..][..hf * wf];
                        for fh in 0..hf {
                            // Same geometry as `input_pixel`, with the `h`
                            // validity test hoisted out of the `fw` loop.
                            let Some(h) = (oh * shape.stride_h + fh * shape.dil_h)
                                .checked_sub(shape.pad_h)
                                .filter(|&h| h < hi)
                            else {
                                continue;
                            };
                            let xrow = &xc[h * wi..(h + 1) * wi];
                            let frow = &fc[fh * wf..(fh + 1) * wf];
                            for (fw, &k) in frow.iter().enumerate() {
                                if let Some(w) = (ow * shape.stride_w + fw * shape.dil_w)
                                    .checked_sub(shape.pad_w)
                                    .filter(|&w| w < wi)
                                {
                                    acc += xrow[w] * k;
                                }
                            }
                        }
                    }
                    os[o_idx] = acc;
                    o_idx += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Coord;

    fn shape_1ch() -> ConvShape {
        ConvShape::square(1, 1, 4, 1, 3, 1, 0).unwrap()
    }

    #[test]
    fn hand_computed_1d_like_case() {
        // 4x4 input of all ones, 3x3 filter of all ones -> every output = 9.
        let shape = shape_1ch();
        let x = Tensor::<i32>::from_fn(ifmap_dims(&shape), Layout::Nchw, |_| 1);
        let f = Tensor::<i32>::from_fn(filter_dims(&shape), Layout::Nchw, |_| 1);
        let y = direct_conv(&shape, &x, &f);
        assert_eq!(y.dims(), Dims::new(1, 1, 2, 2));
        for c in y.dims().iter() {
            assert_eq!(y.get(c), 9);
        }
    }

    #[test]
    fn identity_filter_is_shift() {
        // A 3x3 filter with a single 1 at tap (0,0) copies the top-left of
        // each window: y[oh][ow] = x[oh][ow].
        let shape = shape_1ch();
        let x = Tensor::<i32>::coordinate_coded(ifmap_dims(&shape), Layout::Nchw);
        let f = Tensor::<i32>::from_fn(filter_dims(&shape), Layout::Nchw, |c| {
            i32::from(c.h == 0 && c.w == 0)
        });
        let y = direct_conv(&shape, &x, &f);
        for oh in 0..2 {
            for ow in 0..2 {
                assert_eq!(
                    y.get(Coord::new(0, 0, oh, ow)),
                    x.get(Coord::new(0, 0, oh, ow))
                );
            }
        }
    }

    #[test]
    fn padding_zeros_contribute_nothing() {
        // All-ones input/filter with pad 1: corner output windows cover 4
        // valid pixels, edges 6, centre 9.
        let shape = ConvShape::square(1, 1, 3, 1, 3, 1, 1).unwrap();
        let x = Tensor::<i32>::from_fn(ifmap_dims(&shape), Layout::Nchw, |_| 1);
        let f = Tensor::<i32>::from_fn(filter_dims(&shape), Layout::Nchw, |_| 1);
        let y = direct_conv(&shape, &x, &f);
        assert_eq!(y.get(Coord::new(0, 0, 0, 0)), 4);
        assert_eq!(y.get(Coord::new(0, 0, 0, 1)), 6);
        assert_eq!(y.get(Coord::new(0, 0, 1, 1)), 9);
    }

    #[test]
    fn stride_subsamples() {
        let dense = ConvShape::square(1, 2, 7, 3, 3, 1, 0).unwrap();
        let strided = ConvShape::square(1, 2, 7, 3, 3, 2, 0).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&dense), Layout::Nchw, 5);
        let f = Tensor::<i64>::from_fn(filter_dims(&dense), Layout::Nchw, |c| {
            (c.n + c.c + c.h + c.w) as i64
        });
        let yd = direct_conv(&dense, &x, &f);
        let ys = direct_conv(&strided, &x, &f);
        // Strided output (oh, ow) equals dense output (2oh, 2ow).
        for n in 0..1 {
            for co in 0..3 {
                for oh in 0..strided.out_h() {
                    for ow in 0..strided.out_w() {
                        assert_eq!(
                            ys.get(Coord::new(n, co, oh, ow)),
                            yd.get(Coord::new(n, co, 2 * oh, 2 * ow))
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dilation_skips_pixels() {
        // Dilated 2x, 2x2 filter on a coordinate-coded input: tap (1,1) reads
        // pixel (h+2, w+2).
        let shape = ConvShape::new(1, 1, 5, 5, 1, 2, 2)
            .dilation(2)
            .build()
            .unwrap();
        let x = Tensor::<i32>::coordinate_coded(ifmap_dims(&shape), Layout::Nchw);
        let f = Tensor::<i32>::from_fn(filter_dims(&shape), Layout::Nchw, |c| {
            i32::from(c.h == 1 && c.w == 1)
        });
        let y = direct_conv(&shape, &x, &f);
        assert_eq!(y.get(Coord::new(0, 0, 0, 0)), x.get(Coord::new(0, 0, 2, 2)));
    }

    #[test]
    fn layout_of_inputs_is_irrelevant() {
        let shape = ConvShape::square(2, 3, 6, 4, 3, 1, 1).unwrap();
        let x = Tensor::<f64>::random(ifmap_dims(&shape), Layout::Nchw, 9);
        let f = Tensor::<f64>::random(filter_dims(&shape), Layout::Nchw, 10);
        let y0 = direct_conv(&shape, &x, &f);
        let y1 = direct_conv(&shape, &x.relayout(Layout::Hwcn), &f.relayout(Layout::Nhwc));
        assert!(y0.approx_eq(&y1, 0.0));
    }

    #[test]
    fn input_pixel_padding_boundaries() {
        let shape = ConvShape::square(1, 1, 5, 1, 3, 1, 1).unwrap();
        // Output (0,0), tap (0,0) -> pixel (-1,-1): padding.
        assert_eq!(input_pixel(&shape, 0, 0, 0, 0), None);
        // Output (0,0), tap (1,1) -> pixel (0,0).
        assert_eq!(input_pixel(&shape, 0, 0, 1, 1), Some((0, 0)));
        // Output (4,4), tap (2,2) -> pixel (5,5): beyond the input.
        assert_eq!(input_pixel(&shape, 4, 4, 2, 2), None);
        assert_eq!(input_pixel(&shape, 4, 4, 1, 1), Some((4, 4)));
    }
}
