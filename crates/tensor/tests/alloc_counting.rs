//! Proves the zero-alloc claim for the packed GEMM workspace: once a
//! `GemmWorkspace` has been sized by a first multiply, repeated
//! `matmul_into` calls at the same or smaller shapes perform **zero** heap
//! allocations, and `matmul_with` allocates only the output matrix.
//!
//! A counting `#[global_allocator]` wrapper makes this a hard assertion
//! instead of a code-review promise. The test binary is single-threaded by
//! construction (one `#[test]` fn), so the global counter is not perturbed
//! by unrelated test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use iconv_tensor::{GemmWorkspace, Matrix};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (r, ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn packed_gemm_workspace_reuse_is_zero_alloc() {
    let a = Matrix::<f32>::from_fn(37, 29, |r, c| (r * 29 + c) as f32 * 0.01);
    let b = Matrix::<f32>::from_fn(29, 53, |r, c| (r + c * 7) as f32 * 0.02);
    let mut ws = GemmWorkspace::new();
    let mut out = Matrix::<f32>::zeros(37, 53);

    // Warm-up sizes the packing buffers for this shape.
    a.matmul_into(&b, &mut ws, &mut out);
    let want = out.clone();

    // Steady state: zero allocations, repeated.
    for _ in 0..3 {
        let (_, n_allocs) = allocs_during(|| a.matmul_into(&b, &mut ws, &mut out));
        assert_eq!(
            n_allocs, 0,
            "steady-state matmul_into must not touch the heap"
        );
    }
    assert_eq!(out, want, "reused-workspace result drifted");

    // A smaller multiply reuses the larger buffers: still zero allocations.
    let a_small = Matrix::<f32>::from_fn(5, 7, |r, c| (r + c) as f32);
    let b_small = Matrix::<f32>::from_fn(7, 3, |r, c| (r * 3 + c) as f32);
    let mut out_small = Matrix::<f32>::zeros(5, 3);
    let (_, n_small) = allocs_during(|| a_small.matmul_into(&b_small, &mut ws, &mut out_small));
    assert_eq!(n_small, 0, "smaller shapes must reuse the sized buffers");
    assert_eq!(out_small, a_small.reference_gemm(&b_small));

    // matmul_with allocates exactly the output matrix and nothing else.
    let (got, n_with) = allocs_during(|| a.matmul_with(&b, &mut ws));
    assert_eq!(
        n_with, 1,
        "warmed matmul_with must allocate only the output matrix"
    );
    assert_eq!(got, want);
}
