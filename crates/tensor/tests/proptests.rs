//! Property-based tests of the tensor substrate: random shapes, layouts and
//! data, checking the algebraic invariants everything downstream rests on.

use iconv_tensor::conv_ref::{direct_conv, filter_dims, ifmap_dims};
use iconv_tensor::im2col::{conv_explicit, entry_coord, lower, output_to_row, row_to_output};
use iconv_tensor::{ColumnOrder, ConvShape, Dims, Layout, Matrix, Tensor};
use proptest::prelude::*;

/// Random valid convolution shapes, kept small for test speed.
fn conv_shapes() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=3, // n
        1usize..=6, // ci
        1usize..=4, // hf
        1usize..=4, // wf
        1usize..=6, // co
        1usize..=3, // stride
        0usize..=2, // pad
        1usize..=2, // dilation
        0usize..=6, // extra spatial beyond minimum
    )
        .prop_filter_map("filter must fit", |(n, ci, hf, wf, co, s, p, d, extra)| {
            let eff_h = d * (hf - 1) + 1;
            let eff_w = d * (wf - 1) + 1;
            let hi = eff_h.saturating_sub(2 * p).max(1) + extra;
            let wi = eff_w.saturating_sub(2 * p).max(1) + extra;
            ConvShape::new(n, ci, hi, wi, co, hf, wf)
                .stride(s)
                .pad(p)
                .dilation(d)
                .build()
                .ok()
        })
}

fn dims() -> impl Strategy<Value = Dims> {
    (1usize..=4, 1usize..=5, 1usize..=5, 1usize..=5).prop_map(|(n, c, h, w)| Dims::new(n, c, h, w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layout offsets are bijections onto `0..len` for every layout.
    #[test]
    fn layout_offsets_are_bijective(d in dims()) {
        for layout in Layout::ALL {
            let mut seen = vec![false; d.len()];
            for coord in d.iter() {
                let off = layout.offset(d, coord);
                prop_assert!(off < d.len());
                prop_assert!(!seen[off], "collision at {off} in {layout}");
                seen[off] = true;
                prop_assert_eq!(layout.coord(d, off), coord);
            }
        }
    }

    /// Relayout round-trips preserve logical contents.
    #[test]
    fn relayout_roundtrip(d in dims(), seed in 0u64..1000) {
        let t = Tensor::<i32>::random(d, Layout::Nchw, seed);
        for layout in Layout::ALL {
            prop_assert!(t.relayout(layout).relayout(Layout::Nchw).approx_eq(&t, 0.0));
        }
    }

    /// Output-pixel <-> lowered-row mappings invert each other.
    #[test]
    fn row_mapping_bijective(shape in conv_shapes()) {
        for row in 0..shape.lowered_rows() {
            let (n, oh, ow) = row_to_output(&shape, row);
            prop_assert!(n < shape.n && oh < shape.out_h() && ow < shape.out_w());
            prop_assert_eq!(output_to_row(&shape, n, oh, ow), row);
        }
    }

    /// Column index <-> tap mappings invert each other in both orders.
    #[test]
    fn column_mapping_bijective(shape in conv_shapes()) {
        for order in ColumnOrder::ALL {
            for col in 0..shape.lowered_cols() {
                let tap = order.tap(&shape, col);
                prop_assert_eq!(order.col(&shape, tap), col);
            }
        }
    }

    /// The two lowered orders are column permutations of each other, and
    /// GEMM is invariant under the paired permutation — the paper's
    /// correctness argument for channel-first im2col.
    #[test]
    fn column_permutation_invariance(shape in conv_shapes(), seed in 0u64..1000) {
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, seed);
        let last = lower(&shape, &x, ColumnOrder::ChannelLast);
        let first = lower(&shape, &x, ColumnOrder::ChannelFirst);
        let perm = ColumnOrder::ChannelFirst.permutation_to(ColumnOrder::ChannelLast, &shape);
        prop_assert_eq!(last.permute_cols(&perm), first);
    }

    /// Explicit im2col + GEMM equals direct convolution, bit-exactly on
    /// integers, for both column orders.
    #[test]
    fn explicit_equals_direct(shape in conv_shapes(), seed in 0u64..1000) {
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, seed);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, seed + 1);
        let want = direct_conv(&shape, &x, &f);
        for order in ColumnOrder::ALL {
            prop_assert!(want.approx_eq(&conv_explicit(&shape, &x, &f, order), 0.0));
        }
    }

    /// Every lowered entry is either a valid in-bounds coordinate or a
    /// padding zero, and valid entries cover each coordinate of the
    /// receptive field exactly once per row.
    #[test]
    fn lowered_entries_in_bounds(shape in conv_shapes()) {
        let idims = ifmap_dims(&shape);
        for row in [0, shape.lowered_rows() - 1, shape.lowered_rows() / 2] {
            let mut seen = std::collections::BTreeSet::new();
            for col in 0..shape.lowered_cols() {
                if let Some(c) = entry_coord(&shape, ColumnOrder::ChannelFirst, row, col) {
                    prop_assert!(idims.contains(c), "{c} out of bounds");
                    prop_assert!(seen.insert(c), "duplicate {c} in row {row}");
                }
            }
        }
    }

    /// GEMM: blocked reference equals naive for arbitrary block sizes, and
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn gemm_identities(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        bs in 1usize..8, seed in 0u64..1000,
    ) {
        let mut s = seed;
        let mut next = move || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); ((s >> 33) % 17) as i64 - 8 };
        let a = Matrix::<i64>::from_fn(m, k, |_, _| next());
        let b = Matrix::<i64>::from_fn(k, n, |_, _| next());
        let c = a.matmul(&b);
        prop_assert_eq!(&a.reference_blocked(&b, bs), &c);
        prop_assert_eq!(b.transpose().matmul(&a.transpose()), c.transpose());
    }

    /// The packed register-blocked kernel is **bit-identical** to the plain
    /// `i-k-j` triple loop on floats over ragged shapes straddling the
    /// MR/NR panel boundaries — not approximately equal: the ascending-`k`
    /// single-accumulator order is a contract.
    #[test]
    fn packed_bit_identical_to_naive_f32(
        m in 1usize..=70, k in 1usize..=70, n in 1usize..=70, seed in 0u64..1000,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) % 2000) as f32 * 0.0173 - 17.3
        };
        let a = Matrix::<f32>::from_fn(m, k, |_, _| next());
        let b = Matrix::<f32>::from_fn(k, n, |_, _| next());
        let want = a.reference_gemm(&b);
        prop_assert_eq!(a.matmul(&b).as_slice(), want.as_slice());
        prop_assert_eq!(a.par_matmul(&b).as_slice(), want.as_slice());
    }

    /// Same bit-identity contract for f64 with a reused workspace across
    /// differently-shaped calls (stale pad lanes must never leak).
    #[test]
    fn packed_bit_identical_reused_workspace_f64(
        m1 in 1usize..=40, k1 in 1usize..=40, n1 in 1usize..=40,
        m2 in 1usize..=40, k2 in 1usize..=40, n2 in 1usize..=40,
        seed in 0u64..1000,
    ) {
        let mut ws = iconv_tensor::GemmWorkspace::new();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) % 4000) as f64 * 0.00137 - 2.74
        };
        for (m, k, n) in [(m1, k1, n1), (m2, k2, n2)] {
            let a = Matrix::<f64>::from_fn(m, k, |_, _| next());
            let b = Matrix::<f64>::from_fn(k, n, |_, _| next());
            prop_assert_eq!(
                a.matmul_with(&b, &mut ws).as_slice(),
                a.reference_gemm(&b).as_slice()
            );
        }
    }

    /// Zero-dim edges: any of m, k, n being 0 yields the right-shaped
    /// (zero) result from every GEMM entry point.
    #[test]
    fn packed_zero_dim_edges(m in 0usize..=5, k in 0usize..=5, n in 0usize..=5, z in 0usize..3) {
        // Force at least one zero dimension.
        let (m, k, n) = match z {
            0 => (0, k, n),
            1 => (m, 0, n),
            _ => (m, k, 0),
        };
        let a = Matrix::<f32>::from_fn(m, k, |r, c| (r + c) as f32);
        let b = Matrix::<f32>::from_fn(k, n, |r, c| (r * 2 + c) as f32);
        let want = a.reference_gemm(&b);
        prop_assert_eq!(&a.matmul(&b), &want);
        prop_assert_eq!(&a.par_matmul(&b), &want);
        prop_assert_eq!(want.shape(), (m, n));
        prop_assert!(want.as_slice().iter().all(|&v| v == 0.0));
    }

    /// i64 magnitudes near the overflow edge: the packed kernel performs
    /// exactly the naive multiply/add sequence (pad lanes only ever add
    /// `0 * b`), so any sum the naive loop computes without wrapping, the
    /// packed kernel computes identically.
    #[test]
    fn packed_i64_overflow_adjacent(
        m in 1usize..=9, k in 1usize..=7, n in 1usize..=9, seed in 0u64..1000,
    ) {
        // |a|,|b| ≤ 2^30, so each product ≤ 2^60 and k ≤ 7 partial sums stay
        // under i64::MAX (7·2^60 ≈ 8.1e18 < 9.2e18) even in the worst case,
        // while landing within 15% of the overflow edge.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (s >> 3) as i64 & ((1i64 << 30) - 1);
            if s & 1 == 0 { v } else { -v }
        };
        let a = Matrix::<i64>::from_fn(m, k, |_, _| next());
        let b = Matrix::<i64>::from_fn(k, n, |_, _| next());
        prop_assert_eq!(a.matmul(&b).as_slice(), a.reference_gemm(&b).as_slice());
    }

    /// FLOP accounting equals the lowered GEMM dimensions.
    #[test]
    fn flops_consistent(shape in conv_shapes()) {
        let (m, n, k) = shape.gemm_mnk();
        prop_assert_eq!(shape.flops(), 2 * (m * n * k) as u64);
        prop_assert_eq!(shape.lowered_elems(), m * k);
    }
}

/// Non-proptest sanity: the strategy actually generates strides/dilations.
#[test]
fn strategy_covers_variants() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let mut saw_stride = false;
    let mut saw_dil = false;
    for _ in 0..200 {
        let s = conv_shapes().new_tree(&mut runner).unwrap().current();
        saw_stride |= s.stride_h > 1;
        saw_dil |= s.dil_h > 1;
    }
    assert!(
        saw_stride && saw_dil,
        "strategy must exercise stride and dilation"
    );
}
