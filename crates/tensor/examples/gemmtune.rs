//! Microkernel tuning harness: times MR×NR variants of the packed kernel
//! on f32, with and without the runtime-dispatched AVX2 path, against the
//! naive i-k-j loop — all under the default (SSE2) build flags. Run with
//! `cargo run --release -p iconv-tensor --example gemmtune`.

// Tuning scaffolding mirrors the library kernel's flat-scalar ABI.
#![allow(clippy::too_many_arguments)]

use std::time::Instant;

fn pack_a<const MR: usize>(a: &[f32], m: usize, k: usize, dst: &mut Vec<f32>) {
    let mp = m.div_ceil(MR);
    dst.clear();
    dst.resize(mp * k * MR, 0.0);
    for ip in 0..mp {
        let i0 = ip * MR;
        let m_eff = MR.min(m - i0);
        let panel = &mut dst[ip * k * MR..(ip + 1) * k * MR];
        for r in 0..m_eff {
            for ki in 0..k {
                panel[ki * MR + r] = a[(i0 + r) * k + ki];
            }
        }
    }
}

fn pack_b<const NR: usize>(b: &[f32], k: usize, n: usize, dst: &mut Vec<f32>) {
    let np = n.div_ceil(NR);
    dst.clear();
    dst.resize(np * k * NR, 0.0);
    for jp in 0..np {
        let j0 = jp * NR;
        let n_eff = NR.min(n - j0);
        let panel = &mut dst[jp * k * NR..(jp + 1) * k * NR];
        for ki in 0..k {
            panel[ki * NR..ki * NR + n_eff].copy_from_slice(&b[ki * n + j0..ki * n + j0 + n_eff]);
        }
    }
}

#[inline(always)]
fn micro_body<const MR: usize, const NR: usize>(
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    m_eff: usize,
    n_eff: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = a[r];
            for j in 0..NR {
                acc[r][j] += ar * b[j];
            }
        }
    }
    for r in 0..m_eff {
        out[(i0 + r) * ldc + j0..(i0 + r) * ldc + j0 + n_eff].copy_from_slice(&acc[r][..n_eff]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn micro_avx2<const MR: usize, const NR: usize>(
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    m_eff: usize,
    n_eff: usize,
) {
    micro_body::<MR, NR>(ap, bp, out, ldc, i0, j0, m_eff, n_eff)
}

fn gemm<const MR: usize, const NR: usize>(
    avx2: bool,
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    ap: &mut Vec<f32>,
    bp: &mut Vec<f32>,
    out: &mut [f32],
) {
    pack_a::<MR>(a, m, k, ap);
    pack_b::<NR>(b, k, n, bp);
    let mp = m.div_ceil(MR);
    let np = n.div_ceil(NR);
    for ip in 0..mp {
        let i0 = ip * MR;
        let m_eff = MR.min(m - i0);
        let apanel = &ap[ip * k * MR..(ip + 1) * k * MR];
        for jp in 0..np {
            let j0 = jp * NR;
            let n_eff = NR.min(n - j0);
            let bpanel = &bp[jp * k * NR..(jp + 1) * k * NR];
            #[cfg(target_arch = "x86_64")]
            if avx2 {
                // SAFETY: caller verified avx2 via is_x86_feature_detected.
                unsafe { micro_avx2::<MR, NR>(apanel, bpanel, out, n, i0, j0, m_eff, n_eff) };
                continue;
            }
            let _ = avx2;
            micro_body::<MR, NR>(apanel, bpanel, out, n, i0, j0, m_eff, n_eff);
        }
    }
}

fn naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    out.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let rrow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(rrow) {
                *o += av * bv;
            }
        }
    }
}

fn time_it(n: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let iters = (400_000_000 / (2 * n * n * n)).max(5);
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    let secs = t.elapsed().as_secs_f64() / iters as f64;
    (2 * n * n * n) as f64 / secs / 1e9
}

fn run_variant<const MR: usize, const NR: usize>(n: usize, label: &str) {
    let a: Vec<f32> = (0..n * n).map(|i| (i % 997) as f32 * 0.01).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i % 883) as f32 * 0.013).collect();
    let mut ap = Vec::new();
    let mut bp = Vec::new();
    let mut out = vec![0.0f32; n * n];
    let scalar = time_it(n, || {
        gemm::<MR, NR>(false, &a, n, n, &b, n, &mut ap, &mut bp, &mut out)
    });
    let avx = if std::arch::is_x86_feature_detected!("avx2") {
        time_it(n, || {
            gemm::<MR, NR>(true, &a, n, n, &b, n, &mut ap, &mut bp, &mut out)
        })
    } else {
        f64::NAN
    };
    std::hint::black_box(&out);
    println!("  {label:6} scalar {scalar:7.2}  avx2 {avx:7.2} GFLOP/s");
}

fn main() {
    for n in [64usize, 128, 256] {
        let a: Vec<f32> = (0..n * n).map(|i| (i % 997) as f32 * 0.01).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i % 883) as f32 * 0.013).collect();
        let mut out = vec![0.0f32; n * n];
        let base = time_it(n, || naive(&a, n, n, &b, n, &mut out));
        println!("n={n}  naive {base:7.2} GFLOP/s");
        run_variant::<4, 8>(n, "4x8");
        run_variant::<4, 16>(n, "4x16");
        run_variant::<8, 8>(n, "8x8");
        run_variant::<2, 16>(n, "2x16");
        run_variant::<8, 16>(n, "8x16");
        run_variant::<4, 24>(n, "4x24");
    }
}
