//! Property-based tests of the SRAM area, port and crossbar models.

use iconv_sram::{AreaModel, CrossbarModel, PortStats, VectorMemConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Area is positive and monotone in capacity at fixed word size.
    #[test]
    fn area_monotone_in_capacity(
        cap_kb in 1u64..4096,
        word in prop::sample::select(vec![4u64, 8, 16, 32, 64, 128]),
    ) {
        let m = AreaModel::freepdk45();
        let a1 = m.area_um2(cap_kb * 1024, word);
        let a2 = m.area_um2(cap_kb * 2048, word);
        prop_assert!(a1 > 0.0);
        prop_assert!(a2 > a1, "double capacity must cost more area");
    }

    /// For vector-memory-class macros (≥ 64 KB), narrowing the word never
    /// reduces area: the row periphery dominates. (Tiny macros flip — the
    /// column periphery term moves the U-curve minimum left — so the range
    /// is restricted to the regime the Fig. 16b sweep lives in.)
    #[test]
    fn area_monotone_in_word_narrowing(cap_kb in 64u64..1024) {
        let m = AreaModel::freepdk45();
        let cap = cap_kb * 1024;
        let mut prev = f64::INFINITY;
        for word in [4u64, 8, 16, 32, 64] {
            let a = m.area_um2(cap, word);
            prop_assert!(a <= prev * 1.0001, "area rose when widening to {word}B");
            prev = a;
        }
    }

    /// Port stats: idle ratio and demand are consistent and bounded.
    #[test]
    fn port_stats_consistent(cycles in 1u64..100_000, reads in 0u64..100_000, writes in 0u64..100_000) {
        let s = PortStats { cycles, reads, writes };
        let d = s.demand();
        prop_assert!(d >= 0.0);
        prop_assert!((s.idle_ratio() - (1.0 - d).clamp(0.0, 1.0)).abs() < 1e-12);
        prop_assert!(s.stall_factor() >= 1.0);
        if reads + writes <= cycles {
            prop_assert!(s.idle_ratio() >= 0.0 && s.idle_ratio() <= 1.0);
        } else {
            prop_assert_eq!(s.idle_ratio(), 0.0);
        }
    }

    /// Crossbar area grows strictly with ports and the quadratic term
    /// dominates at scale.
    #[test]
    fn crossbar_superlinear(ports_log in 2u32..8) {
        let m = CrossbarModel::default();
        let p = 1usize << ports_log;
        let a1 = m.area(p, 32);
        let a2 = m.area(p * 2, 32);
        prop_assert!(a2 > 2.0 * a1, "doubling ports must more than double area");
        prop_assert!(a2 < 4.5 * a1, "growth should stay near quadratic");
    }

    /// Vector-memory word geometry is self-consistent.
    #[test]
    fn vector_mem_geometry(word in 1usize..64, cap_kb in 1u64..1024) {
        let cfg = VectorMemConfig {
            word_elems: word,
            elem_bytes: 4,
            capacity_bytes: cap_kb * 1024,
        };
        prop_assert_eq!(cfg.word_bytes(), (word * 4) as u64);
        prop_assert_eq!(cfg.capacity_words() * cfg.word_bytes() <= cfg.capacity_bytes, true);
    }
}
