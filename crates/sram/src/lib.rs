//! # iconv-sram
//!
//! On-chip SRAM modelling for the simulators: an analytical **area model**
//! (the workspace's substitute for CACTI/OpenRAM, used by the Fig. 16b word
//! size design-space exploration) and a **port-occupancy model** for the
//! TPU's single-port vector memories (read/write interleaving, idle-ratio
//! statistics).

pub mod area;
pub mod crossbar;
pub mod port;

pub use area::AreaModel;
pub use crossbar::CrossbarModel;
pub use port::{PortStats, VectorMemConfig};
