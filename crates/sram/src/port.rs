//! Port-occupancy model for the TPU's single-port vector memories.
//!
//! Each of the 128 SRAM arrays has one read/write port. A word of `w`
//! elements feeds the serializer for `w` cycles, so steady-state demand on
//! the port is `1/w` reads per cycle plus (when OFMap results stream back
//! through the de-serializer) `1/w` writes per cycle. The paper's
//! Sec. IV-A observation is that for `w ≥ 2` the two interleave with zero
//! contention; this module generalizes that to arbitrary demands, and
//! produces the bandwidth-idle statistics plotted in Fig. 16b.

/// Configuration of one vector-memory array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorMemConfig {
    /// Elements per word.
    pub word_elems: usize,
    /// Bytes per element.
    pub elem_bytes: usize,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
}

impl VectorMemConfig {
    /// The TPU-v2 array: 8 × 4-byte words, 256 KB each (32 MB / 128).
    pub fn tpu_v2() -> Self {
        Self {
            word_elems: 8,
            elem_bytes: 4,
            capacity_bytes: 256 * 1024,
        }
    }

    /// Word size in bytes.
    pub fn word_bytes(&self) -> u64 {
        (self.word_elems * self.elem_bytes) as u64
    }

    /// Words the array can hold.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_bytes / self.word_bytes()
    }
}

/// Aggregated port activity over a simulated interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PortStats {
    /// Cycles in the interval.
    pub cycles: u64,
    /// Word reads issued.
    pub reads: u64,
    /// Word writes issued.
    pub writes: u64,
}

impl PortStats {
    /// Accumulate another interval.
    pub fn merge(&mut self, other: &PortStats) {
        self.cycles += other.cycles;
        self.reads += other.reads;
        self.writes += other.writes;
    }

    /// Port accesses per cycle (demand). May exceed 1 if the schedule
    /// oversubscribes the port.
    pub fn demand(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.reads + self.writes) as f64 / self.cycles as f64
    }

    /// Fraction of cycles the port sits idle, clamped to `[0, 1]` — the
    /// Fig. 16b "SRAM bandwidth idle ratio".
    pub fn idle_ratio(&self) -> f64 {
        (1.0 - self.demand()).clamp(0.0, 1.0)
    }

    /// Stall multiplier the compute pipeline suffers from port contention:
    /// 1.0 while demand ≤ 1, proportional beyond (accesses serialize).
    pub fn stall_factor(&self) -> f64 {
        self.demand().max(1.0)
    }

    /// Emit this interval's activity as counters: port cycles, reads,
    /// writes, and the cycles by which demand oversubscribes the single
    /// port (`max(reads + writes − cycles, 0)` — zero whenever the
    /// interleave argument of Sec. IV-A holds).
    pub fn record(&self, sink: &mut dyn iconv_trace::TraceSink) {
        sink.counter("sram.port_cycles", self.cycles);
        sink.counter("sram.reads", self.reads);
        sink.counter("sram.writes", self.writes);
        sink.counter(
            "sram.stall_cycles",
            (self.reads + self.writes).saturating_sub(self.cycles),
        );
    }
}

/// Steady-state per-array stats for streaming a GEMM through word-size-`w`
/// vector memories for `cycles` cycles, with OFMap write-back enabled or
/// not.
///
/// Each array is read once per `w` cycles; the de-serializer writes once per
/// `w` cycles when results stream back.
pub fn steady_state_stats(config: &VectorMemConfig, cycles: u64, writes_back: bool) -> PortStats {
    let w = config.word_elems as u64;
    PortStats {
        cycles,
        reads: cycles / w,
        writes: if writes_back { cycles / w } else { 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpu_word8_interleaves_without_contention() {
        let stats = steady_state_stats(&VectorMemConfig::tpu_v2(), 8000, true);
        // 1/8 reads + 1/8 writes = 25% demand: zero contention, 75% idle.
        assert!((stats.demand() - 0.25).abs() < 1e-9);
        assert!((stats.idle_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(stats.stall_factor(), 1.0);
    }

    #[test]
    fn word1_oversubscribes_the_port() {
        let cfg = VectorMemConfig {
            word_elems: 1,
            elem_bytes: 4,
            capacity_bytes: 256 * 1024,
        };
        let stats = steady_state_stats(&cfg, 1000, true);
        // 1 read + 1 write per cycle on a single port: 2x oversubscribed.
        assert!((stats.demand() - 2.0).abs() < 1e-9);
        assert_eq!(stats.idle_ratio(), 0.0);
        assert!((stats.stall_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_ratio_grows_with_word_size() {
        let mut prev = -1.0;
        for w in [1usize, 2, 4, 8, 16, 32] {
            let cfg = VectorMemConfig {
                word_elems: w,
                elem_bytes: 4,
                capacity_bytes: 256 * 1024,
            };
            let idle = steady_state_stats(&cfg, 3200, true).idle_ratio();
            assert!(idle >= prev, "idle ratio must grow with word size");
            prev = idle;
        }
        assert!(prev > 0.9); // word 32: port used 2/32 of cycles
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PortStats {
            cycles: 100,
            reads: 10,
            writes: 5,
        };
        a.merge(&PortStats {
            cycles: 100,
            reads: 20,
            writes: 15,
        });
        assert_eq!(a.cycles, 200);
        assert!((a.demand() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn record_emits_port_counters() {
        let mut rec = iconv_trace::Recorder::new();
        let s = PortStats {
            cycles: 100,
            reads: 80,
            writes: 60,
        };
        s.record(&mut rec);
        assert_eq!(rec.counters()["sram.port_cycles"], 100);
        assert_eq!(rec.counters()["sram.reads"], 80);
        assert_eq!(rec.counters()["sram.writes"], 60);
        // 140 accesses into 100 single-port cycles: 40 serialize.
        assert_eq!(rec.counters()["sram.stall_cycles"], 40);
        let ok = PortStats {
            cycles: 100,
            reads: 12,
            writes: 12,
        };
        ok.record(&mut rec);
        assert_eq!(rec.counters()["sram.stall_cycles"], 40); // unchanged
    }

    #[test]
    fn zero_cycles_is_idle() {
        let s = PortStats::default();
        assert_eq!(s.demand(), 0.0);
        assert_eq!(s.idle_ratio(), 1.0);
    }

    #[test]
    fn capacity_words() {
        let cfg = VectorMemConfig::tpu_v2();
        assert_eq!(cfg.word_bytes(), 32);
        assert_eq!(cfg.capacity_words(), 8192);
    }
}
