//! Analytical SRAM macro area model.
//!
//! Substitute for the OpenRAM compiler (freepdk45) runs in paper Fig. 16b.
//! For a fixed-capacity macro, area decomposes into:
//!
//! * the cell array — proportional to capacity, word-size independent;
//! * row periphery (decoder, wordline drivers) — proportional to the row
//!   count `capacity / word`, so it **grows as the word narrows**;
//! * column periphery (sense amps, write drivers, column muxes) —
//!   proportional to the word width.
//!
//! `area(word) = cell·bits + d·rows + s·word_bits` is a U-shaped curve.
//! The coefficients below are calibrated to the paper's anchors at 256 KB:
//! a 4-byte word costs ≈3.2× the area of a 32-byte word, and a one-element
//! (4 B) word ≈5× the minimum-area configuration, with the minimum near
//! large words (the paper: word size 8 elements is "close to the minimum").

/// Analytical SRAM area model (single-port, 6T, 45 nm-class constants).
/// # Examples
///
/// ```
/// # use iconv_sram::AreaModel;
/// let m = AreaModel::freepdk45();
/// // The paper's anchor: a 4-byte word costs ~3.2x the area of a 32-byte
/// // word at 256 KB (Fig. 16b).
/// let ratio = m.area_um2(256 * 1024, 4) / m.area_um2(256 * 1024, 32);
/// assert!((3.0..3.4).contains(&ratio));
/// ```
///

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Cell-array area per bit (µm²/bit).
    pub cell_um2_per_bit: f64,
    /// Row-periphery area per row (µm²/row).
    pub row_um2_per_row: f64,
    /// Column-periphery area per bit of word width (µm²/bit).
    pub col_um2_per_bit: f64,
    /// Fixed control overhead (µm²).
    pub fixed_um2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::freepdk45()
    }
}

impl AreaModel {
    /// Constants calibrated to the paper's freepdk45 anchors (see module
    /// docs). Derived by solving `area(4 B word) / area(32 B word) = 3.2`
    /// for a 256 KB macro, with the curve minimum pushed toward wide words
    /// so a one-element word shows a ≈4–5× overhead versus the minimum, and
    /// the absolute scale set so the 256 KB / 32 B-word macro lands near
    /// 0.55 mm² (typical of 45 nm compiled macros of this size).
    pub fn freepdk45() -> Self {
        Self {
            cell_um2_per_bit: 0.1756,
            row_um2_per_row: 21.22,
            col_um2_per_bit: 30.9,
            fixed_um2: 0.0,
        }
    }

    /// Area (µm²) of one macro of `capacity_bytes` with `word_bytes` words.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or the word exceeds the capacity.
    pub fn area_um2(&self, capacity_bytes: u64, word_bytes: u64) -> f64 {
        assert!(capacity_bytes > 0 && word_bytes > 0, "zero-sized macro");
        assert!(word_bytes <= capacity_bytes, "word exceeds capacity");
        let bits = capacity_bytes as f64 * 8.0;
        let word_bits = word_bytes as f64 * 8.0;
        let rows = bits / word_bits;
        self.cell_um2_per_bit * bits
            + self.row_um2_per_row * rows
            + self.col_um2_per_bit * word_bits
            + self.fixed_um2
    }

    /// Area in mm².
    pub fn area_mm2(&self, capacity_bytes: u64, word_bytes: u64) -> f64 {
        self.area_um2(capacity_bytes, word_bytes) / 1e6
    }

    /// Area of `word_bytes` relative to the minimum over `candidates`
    /// (the Fig. 16b normalization).
    pub fn relative_area(&self, capacity_bytes: u64, word_bytes: u64, candidates: &[u64]) -> f64 {
        let min = candidates
            .iter()
            .map(|&w| self.area_um2(capacity_bytes, w))
            .fold(f64::INFINITY, f64::min);
        self.area_um2(capacity_bytes, word_bytes) / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 256 * 1024;

    #[test]
    fn paper_anchor_4b_vs_32b_is_3_2x() {
        let m = AreaModel::freepdk45();
        let ratio = m.area_um2(CAP, 4) / m.area_um2(CAP, 32);
        assert!(
            (ratio - 3.2).abs() < 0.15,
            "4B vs 32B ratio = {ratio}, want ≈3.2"
        );
    }

    #[test]
    fn paper_anchor_word1_about_5x_minimum() {
        // Fig. 16b: word 1 (one 4-byte element) ≈5× overhead vs the curve
        // minimum over the swept words.
        let m = AreaModel::freepdk45();
        let words: Vec<u64> = [1u64, 2, 4, 8, 16, 32].iter().map(|e| e * 4).collect();
        let rel = m.relative_area(CAP, 4, &words);
        assert!(rel > 3.5 && rel < 5.5, "word-1 relative area = {rel}");
    }

    #[test]
    fn word8_close_to_minimum() {
        // The paper: "word size 8 achieves the area efficiency that is close
        // to the minimum value".
        let m = AreaModel::freepdk45();
        let words: Vec<u64> = [1u64, 2, 4, 8, 16, 32].iter().map(|e| e * 4).collect();
        let rel = m.relative_area(CAP, 32, &words);
        assert!(rel < 1.35, "word-8 relative area = {rel}");
    }

    #[test]
    fn area_decreases_then_flattens_with_word() {
        let m = AreaModel::freepdk45();
        let a4 = m.area_um2(CAP, 4);
        let a32 = m.area_um2(CAP, 32);
        let a128 = m.area_um2(CAP, 128);
        assert!(a4 > a32 && a32 > a128 * 0.95);
        // Diminishing returns: the 4→32 saving dwarfs the 32→128 saving.
        assert!((a4 - a32) > 5.0 * (a32 - a128).abs());
    }

    #[test]
    fn absolute_scale_plausible() {
        let m = AreaModel::freepdk45();
        let mm2 = m.area_mm2(CAP, 32);
        assert!(mm2 > 0.2 && mm2 < 1.5, "256KB macro = {mm2} mm²");
    }

    #[test]
    fn area_scales_roughly_with_capacity() {
        let m = AreaModel::freepdk45();
        let ratio = m.area_um2(2 * CAP, 32) / m.area_um2(CAP, 32);
        assert!(ratio > 1.8 && ratio < 2.2, "capacity scaling ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_capacity_panics() {
        let _ = AreaModel::freepdk45().area_um2(0, 4);
    }

    #[test]
    #[should_panic(expected = "word exceeds capacity")]
    fn oversized_word_panics() {
        let _ = AreaModel::freepdk45().area_um2(64, 128);
    }
}
