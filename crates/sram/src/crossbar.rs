//! Crossbar cost model — the quantitative form of the paper's Sec. II-C
//! scalability argument.
//!
//! The channel-last implicit im2col design (Lym et al.) needs an `P × P`
//! crossbar between a `P`-banked SRAM and the GEMM engine, because each
//! element maps to *different* PEs at different cycles. "The crossbar area
//! and power increase quadratically with respect to the number of ports"
//! (paper, citing Kilo-NOC), so what is free on a GPU SM (32 lanes) is
//! untenable at TPU scale (128–256 rows). The channel-first design needs
//! **no crossbar at all** — every element feeds one fixed row.
//!
//! The model follows the standard matrix-crossbar decomposition: a `P × P`
//! grid of crosspoints (area/energy ∝ `P² · w` for datapath width `w`) plus
//! per-port arbitration/drivers (∝ `P·log₂P`). Constants are normalized to
//! a 32×32, 32-bit crossbar (one SM's shuffle network) = 1 area unit, so
//! results read as "how many GPU-shuffle-networks of silicon".

/// Analytical crossbar area/power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarModel {
    /// Area of one crosspoint switch per bit, in normalized units.
    pub crosspoint_per_bit: f64,
    /// Per-port periphery (arbiter, drivers) per bit per log₂(ports).
    pub port_per_bit: f64,
}

impl Default for CrossbarModel {
    fn default() -> Self {
        // Normalized so a 32-port, 32-bit crossbar = 1.0 area unit, with
        // ~80% of that area in the crosspoint grid (typical for flat
        // matrix crossbars at this radix).
        let grid_share = 0.8;
        let p = 32.0f64;
        let w = 32.0f64;
        Self {
            crosspoint_per_bit: grid_share / (p * p * w),
            port_per_bit: (1.0 - grid_share) / (p * p.log2() * w),
        }
    }
}

impl CrossbarModel {
    /// Area (in 32×32×32-bit crossbar units) of a `ports × ports` crossbar
    /// with `bits`-wide datapaths.
    ///
    /// # Panics
    ///
    /// Panics if `ports < 2` or `bits == 0`.
    pub fn area(&self, ports: usize, bits: usize) -> f64 {
        assert!(ports >= 2, "a crossbar needs at least 2 ports");
        assert!(bits > 0, "zero-width datapath");
        let p = ports as f64;
        let w = bits as f64;
        self.crosspoint_per_bit * p * p * w + self.port_per_bit * p * p.log2() * w
    }

    /// Dynamic energy per transported bit, relative to the 32-port design
    /// (wire length across the grid grows ∝ `P`).
    pub fn energy_per_bit(&self, ports: usize) -> f64 {
        assert!(ports >= 2, "a crossbar needs at least 2 ports");
        ports as f64 / 32.0
    }

    /// Area of the crossbar the channel-last design needs to feed a
    /// `rows × rows` GEMM engine with `elem_bits`-wide elements.
    pub fn channel_last_requirement(&self, rows: usize, elem_bits: usize) -> f64 {
        self.area(rows, elem_bits)
    }

    /// Area of the routing the channel-first design needs: none — each
    /// SRAM array wires straight to its PE row.
    pub fn channel_first_requirement(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_at_gpu_scale() {
        let m = CrossbarModel::default();
        let a = m.area(32, 32);
        assert!((a - 1.0).abs() < 1e-9, "32x32x32b = {a}");
    }

    #[test]
    fn quadratic_growth_with_ports() {
        // Paper: "crossbar area and power increase quadratically with
        // respect to the number of ports."
        let m = CrossbarModel::default();
        let a128 = m.area(128, 32);
        let a256 = m.area(256, 32);
        let ratio = a256 / a128;
        assert!((3.7..4.2).contains(&ratio), "256/128 area ratio {ratio}");
        // TPU-v1 scale (256 rows): tens of GPU shuffle networks of silicon.
        assert!(a256 > 50.0, "256-port crossbar = {a256} units");
    }

    #[test]
    fn linear_growth_with_width() {
        let m = CrossbarModel::default();
        let ratio = m.area(64, 64) / m.area(64, 32);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_grows_with_radix() {
        let m = CrossbarModel::default();
        assert!(m.energy_per_bit(256) > 7.9 * m.energy_per_bit(32));
    }

    #[test]
    fn channel_first_needs_nothing() {
        let m = CrossbarModel::default();
        assert_eq!(m.channel_first_requirement(), 0.0);
        assert!(m.channel_last_requirement(128, 32) > 10.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 ports")]
    fn tiny_crossbar_rejected() {
        let _ = CrossbarModel::default().area(1, 32);
    }
}
