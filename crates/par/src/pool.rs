//! A long-lived worker pool with a bounded job queue.
//!
//! [`par_map_jobs`](crate::par_map_jobs) fans a *batch* out over scoped
//! threads and joins them before returning — the right shape for the
//! experiment sweeps, and the wrong one for a server that must accept jobs
//! for its whole lifetime. [`WorkerPool`] keeps `workers` threads alive,
//! feeds them from a bounded FIFO, and makes overload explicit:
//! [`WorkerPool::try_submit`] returns [`PoolBusy`] instead of blocking when
//! the queue is full, so a caller under backpressure can shed load (the
//! `iconv-serve` server turns this into a `busy` protocol error rather than
//! a hang).
//!
//! Shutdown is graceful by default: [`WorkerPool::shutdown`] (also run on
//! drop) stops accepting new jobs, lets the queue drain, and joins the
//! workers.
//!
//! # Panic isolation
//!
//! A panicking job must not cost the pool a worker: each job runs under
//! [`std::panic::catch_unwind`], so the worker absorbs the unwind, counts
//! it ([`WorkerPool::panics_caught`]), and returns to its fetch loop — an
//! in-place respawn with no thread churn and no shrinking capacity. The
//! *submitter's* obligation is to turn a vanished result into a typed
//! error (the `iconv-serve` dispatch path answers `worker-crashed`); the
//! pool's obligation is that the crash stays contained to the one job.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job the pool can run (the element type of
/// [`WorkerPool::try_submit_batch`]).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`WorkerPool::try_submit`] when the pool cannot take
/// the job: the bounded queue is full, or the pool is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolBusy {
    /// The job queue is at capacity.
    QueueFull,
    /// [`WorkerPool::shutdown`] has begun; no new jobs are accepted.
    ShuttingDown,
}

impl fmt::Display for PoolBusy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolBusy::QueueFull => write!(f, "worker pool queue is full"),
            PoolBusy::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for PoolBusy {}

struct PoolState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a job is pushed or shutdown begins.
    job_ready: Condvar,
    capacity: usize,
    /// Jobs currently executing (not counting queued ones).
    in_flight: AtomicUsize,
    /// Job panics absorbed by workers (see the module-level *Panic
    /// isolation* notes).
    panics: AtomicUsize,
}

/// A fixed-size pool of worker threads fed from a bounded FIFO queue.
///
/// Every method takes `&self` — including [`shutdown`](WorkerPool::shutdown),
/// whose join handles live behind their own mutex — so the pool can be
/// shared across threads without an outer lock. That matters for batch
/// runners: a job executing *on* the pool may resubmit its own continuation
/// via `try_submit` while another thread drives `shutdown`, and neither can
/// deadlock the other.
pub struct WorkerPool {
    shared: Arc<Shared>,
    worker_count: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads sharing a queue of at most `queue_capacity`
    /// pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `queue_capacity == 0`.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        assert!(workers > 0, "workers must be >= 1");
        assert!(queue_capacity > 0, "queue capacity must be >= 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::with_capacity(queue_capacity),
                shutting_down: false,
            }),
            job_ready: Condvar::new(),
            capacity: queue_capacity,
            in_flight: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("iconv-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            worker_count: workers,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueue `job`, or refuse immediately if the queue is full or the
    /// pool is shutting down. Never blocks.
    ///
    /// # Errors
    ///
    /// Returns [`PoolBusy`] when the job was *not* accepted.
    pub fn try_submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolBusy> {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        if state.shutting_down {
            return Err(PoolBusy::ShuttingDown);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(PoolBusy::QueueFull);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Enqueue a whole batch as a single admission unit: either every job
    /// is accepted, or none is. Never blocks, never splits a batch.
    ///
    /// # Errors
    ///
    /// Returns [`PoolBusy::QueueFull`] when the queue cannot take the whole
    /// batch, [`PoolBusy::ShuttingDown`] when the pool is draining. In both
    /// cases zero jobs were enqueued.
    pub fn try_submit_batch(&self, jobs: Vec<Job>) -> Result<(), PoolBusy> {
        if jobs.is_empty() {
            return Ok(());
        }
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        if state.shutting_down {
            return Err(PoolBusy::ShuttingDown);
        }
        if state.queue.len() + jobs.len() > self.shared.capacity {
            return Err(PoolBusy::QueueFull);
        }
        for job in jobs {
            state.queue.push_back(job);
        }
        drop(state);
        self.shared.job_ready.notify_all();
        Ok(())
    }

    /// Number of worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs waiting in the queue (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .queue
            .len()
    }

    /// Jobs currently executing on workers.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Job panics absorbed so far. Every count here is a job that died
    /// without killing its worker: the thread caught the unwind and went
    /// back to the queue.
    pub fn panics_caught(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Stop accepting new jobs, let queued and in-flight jobs finish, and
    /// join the workers. Idempotent; also runs on drop. Takes `&self` so a
    /// shared pool needs no outer lock that in-flight jobs resubmitting
    /// continuations could deadlock against.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutting_down = true;
        }
        self.shared.job_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().expect("pool workers poisoned");
            workers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count)
            .field("capacity", &self.shared.capacity)
            .field("queue_depth", &self.queue_depth())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return; // queue drained and no more will arrive
                }
                state = shared.job_ready.wait(state).expect("pool state poisoned");
            }
        };
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        // Absorb job panics so one poisoned task cannot cost the pool a
        // worker: the catch is the respawn (the thread never dies, so
        // there is no window with reduced capacity).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let counter = Arc::new(AtomicU32::new(0));
        let pool = WorkerPool::new(4, 64);
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn full_queue_refuses_instead_of_blocking() {
        // One worker blocked on a gate; capacity-1 queue: the first job
        // occupies the worker, the second fills the queue, the third must
        // be refused immediately.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let pool = WorkerPool::new(1, 1);
        pool.try_submit(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker never started");
        pool.try_submit(|| {}).unwrap(); // sits in the queue
        assert_eq!(pool.try_submit(|| {}), Err(PoolBusy::QueueFull));
        assert_eq!(pool.queue_depth(), 1);
        assert_eq!(pool.in_flight(), 1);
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_refuses_new_ones() {
        let counter = Arc::new(AtomicU32::new(0));
        let pool = WorkerPool::new(2, 128);
        for _ in 0..40 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                std::thread::sleep(Duration::from_micros(100));
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 40, "queue must drain");
        assert_eq!(pool.try_submit(|| {}), Err(PoolBusy::ShuttingDown));
    }

    #[test]
    #[should_panic(expected = "workers must be >= 1")]
    fn zero_workers_panics() {
        let _ = WorkerPool::new(0, 1);
    }

    #[test]
    fn batch_admission_is_all_or_nothing() {
        // One worker parked on a gate, capacity 4. A 3-job batch fits next
        // to the gate job's successor slotting; a further 3-job batch would
        // overflow and must leave the queue untouched.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let pool = WorkerPool::new(1, 4);
        pool.try_submit(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker never started");
        let counter = Arc::new(AtomicU32::new(0));
        let jobs: Vec<Job> = (0..3)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.try_submit_batch(jobs).unwrap();
        assert_eq!(pool.queue_depth(), 3);
        let refused: Vec<Job> = (0..3).map(|_| Box::new(|| {}) as Job).collect();
        assert_eq!(pool.try_submit_batch(refused), Err(PoolBusy::QueueFull));
        assert_eq!(pool.queue_depth(), 3, "refused batch must not enqueue");
        // A batch exactly filling the remaining slot is accepted.
        pool.try_submit_batch(vec![Box::new(|| {}) as Job]).unwrap();
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 3);
        assert_eq!(
            pool.try_submit_batch(vec![Box::new(|| {}) as Job]),
            Err(PoolBusy::ShuttingDown)
        );
    }

    #[test]
    fn shutdown_by_shared_ref_while_jobs_resubmit() {
        // A job resubmitting its continuation while another thread drives
        // shutdown must not deadlock: the resubmit either lands (and is
        // drained) or is refused with ShuttingDown.
        let pool = Arc::new(WorkerPool::new(2, 64));
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..8 {
            let pool2 = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let counter2 = Arc::clone(&counter);
                let _ = pool2.try_submit(move || {
                    counter2.fetch_add(1, Ordering::Relaxed);
                });
            })
            .unwrap();
        }
        pool.shutdown();
        let n = counter.load(Ordering::Relaxed);
        assert!((8..=16).contains(&n), "ran {n} jobs");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(1, 1);
        pool.try_submit_batch(Vec::new()).unwrap();
        assert_eq!(pool.queue_depth(), 0);
        pool.shutdown();
    }
}
