//! # iconv-par
//!
//! Deterministic parallel fan-out for the workspace's simulation sweeps.
//!
//! The experiment harness runs thousands of independent per-layer /
//! per-algorithm simulator jobs. This crate fans them out across scoped
//! worker threads (rayon is unavailable in the offline build environment, and
//! `std::thread::scope` covers everything the sweeps need) while guaranteeing
//! **deterministic output ordering**: results are returned in the input order
//! regardless of which worker finished first, so a parallel sweep is
//! byte-identical to a sequential one.
//!
//! Job-count selection, in priority order:
//!
//! 1. an explicit `jobs` argument ([`par_map_jobs`]),
//! 2. the `ICONV_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! For *long-lived* services (rather than batch sweeps) the [`pool`] module
//! provides [`WorkerPool`]: persistent workers behind a bounded queue with
//! explicit [`PoolBusy`] backpressure.
//!
//! # Examples
//!
//! ```
//! let squares = iconv_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod pool;

pub use pool::{Job, PoolBusy, WorkerPool};

/// Name of the environment variable overriding the worker count.
pub const JOBS_ENV: &str = "ICONV_JOBS";

/// The number of worker threads sweeps use by default: `ICONV_JOBS` if set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Map `f` over `items` in parallel on [`default_jobs`] workers, returning
/// results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(default_jobs(), items, f)
}

/// Map `f` over `items` on exactly `jobs` workers (clamped to the item
/// count), returning results in input order.
///
/// `jobs == 1` runs inline on the calling thread with no synchronization, so
/// a `--jobs 1` run is a true sequential baseline.
///
/// # Panics
///
/// Panics if `jobs == 0`, or propagates the first worker panic.
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(jobs > 0, "jobs must be >= 1");
    let workers = jobs.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Work-stealing by shared atomic cursor: each worker claims the next
    // unclaimed index, so long and short jobs balance automatically.
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

/// Run every closure in `tasks` in parallel, returning results in task order.
///
/// The task-list analogue of [`par_map`] for heterogeneous jobs (e.g. "run
/// each experiment"): each closure runs exactly once.
pub fn par_run<R, F>(jobs: usize, tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    assert!(jobs > 0, "jobs must be >= 1");
    let workers = jobs.min(tasks.len());
    if workers <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let cursor = AtomicUsize::new(0);
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let task = task
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task already taken");
                *slots[i].lock().expect("result slot poisoned") = Some(task());
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = par_map_jobs(jobs, &items, |&x| x * 3);
            let want: Vec<usize> = items.iter().map(|&x| x * 3).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_equals_sequential_with_uneven_jobs() {
        // Uneven per-item cost exercises the work-stealing cursor.
        let items: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| (0..(x % 7) * 1000).fold(x, |a, b| a.wrapping_add(b * b));
        assert_eq!(par_map_jobs(4, &items, f), par_map_jobs(1, &items, f));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map_jobs(8, &empty, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map_jobs(8, &[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn par_run_executes_each_task_once() {
        use std::sync::atomic::AtomicU32;
        let counter = AtomicU32::new(0);
        let tasks: Vec<_> = (0..16)
            .map(|i| {
                let counter = &counter;
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i * 2
                }
            })
            .collect();
        let got = par_run(4, tasks);
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "jobs must be >= 1")]
    fn zero_jobs_panics() {
        let _ = par_map_jobs(0, &[1], |&x: &i32| x);
    }
}
