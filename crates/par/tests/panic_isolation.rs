//! Pins the pool's panic-isolation contract: a panicking job is absorbed
//! (counted, not fatal), the worker returns to the queue, and the pool
//! keeps its full capacity for subsequent work.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use iconv_par::WorkerPool;

/// A panicking task is contained: the pool reports it, and N subsequent
/// tasks on the *same* pool all complete.
#[test]
fn panicking_job_is_absorbed_and_pool_keeps_working() {
    let pool = WorkerPool::new(2, 64);
    let (tx, rx) = mpsc::channel::<&'static str>();

    let panic_tx = tx.clone();
    pool.try_submit(move || {
        panic_tx.send("about to panic").unwrap();
        panic!("injected job panic");
    })
    .unwrap();
    rx.recv_timeout(Duration::from_secs(5))
        .expect("panicking job never started");

    // The submitter sees the crash as an absent result, typed by whatever
    // layer owns the response channel; here the channel simply closes
    // without a completion message — never a hang, never a poisoned pool.
    let done = Arc::new(AtomicU32::new(0));
    for _ in 0..32 {
        let done = Arc::clone(&done);
        let tx = tx.clone();
        pool.try_submit(move || {
            done.fetch_add(1, Ordering::Relaxed);
            tx.send("ok").unwrap();
        })
        .unwrap();
    }
    for _ in 0..32 {
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok("ok"),
            "a worker died instead of respawning"
        );
    }
    assert_eq!(done.load(Ordering::Relaxed), 32);
    assert_eq!(pool.panics_caught(), 1);
    pool.shutdown();
}

/// A single-worker pool survives a panic: with only one thread, a lost
/// worker would deadlock everything after it, so this is the sharpest
/// respawn check.
#[test]
fn single_worker_pool_survives_a_panic() {
    let pool = WorkerPool::new(1, 8);
    pool.try_submit(|| panic!("boom")).unwrap();
    let (tx, rx) = mpsc::channel::<u32>();
    pool.try_submit(move || tx.send(7).unwrap()).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
    assert_eq!(pool.panics_caught(), 1);
    pool.shutdown();
}

/// Many interleaved panics: the panic count is exact and every healthy job
/// still runs.
#[test]
fn interleaved_panics_are_all_counted() {
    let pool = WorkerPool::new(4, 256);
    let ok = Arc::new(AtomicU32::new(0));
    for i in 0..100 {
        if i % 3 == 0 {
            pool.try_submit(move || panic!("injected panic {i}"))
                .unwrap();
        } else {
            let ok = Arc::clone(&ok);
            pool.try_submit(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
    }
    pool.shutdown();
    assert_eq!(ok.load(Ordering::Relaxed), 66);
    assert_eq!(pool.panics_caught(), 34);
    assert_eq!(pool.in_flight(), 0);
}
