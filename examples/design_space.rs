//! Hardware design-space exploration with TPUSim: sweep the systolic-array
//! size and the vector-memory word size while running VGG16 — reproducing
//! the reasoning behind TPU-v2's 128×128 / word-8 design point (paper
//! Fig. 16).
//!
//! Run with: `cargo run --release --example design_space`

use implicit_conv::prelude::*;
use implicit_conv::sram::AreaModel;

fn main() {
    let model = vgg16(8);

    println!("VGG16 @ batch 8 — systolic array size sweep (total SRAM fixed at 32 MB)\n");
    println!(
        "{:>8} {:>10} {:>12} {:>8}",
        "array", "peak TF/s", "achieved", "util%"
    );
    for size in [32usize, 64, 128, 256, 512] {
        let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
            .array_size(size)
            .build()
            .expect("array sweep config");
        let sim = Simulator::new(cfg);
        let rep = sim.simulate_model(&model, SimMode::ChannelFirst);
        println!(
            "{:>5}x{:<3} {:>10.1} {:>12.1} {:>8.1}",
            size,
            size,
            cfg.peak_tflops(),
            rep.tflops(&cfg),
            100.0 * rep.tflops(&cfg) / cfg.peak_tflops()
        );
    }

    println!("\nVector-memory word-size sweep (256 KB per array, 45nm-class area model)\n");
    println!(
        "{:>6} {:>12} {:>10} {:>10}",
        "word", "area mm2", "rel.area", "idle%"
    );
    let area = AreaModel::freepdk45();
    let words: Vec<u64> = [1u64, 2, 4, 8, 16, 32].iter().map(|e| e * 4).collect();
    for elems in [1usize, 2, 4, 8, 16, 32] {
        let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
            .word_elems(elems)
            .build()
            .expect("word sweep config");
        let sim = Simulator::new(cfg);
        let rep = sim.simulate_model(&model, SimMode::ChannelFirst);
        let bytes = (elems * 4) as u64;
        println!(
            "{:>6} {:>12.2} {:>10.2} {:>10.1}",
            elems,
            area.area_mm2(256 * 1024, bytes),
            area.relative_area(256 * 1024, bytes, &words),
            100.0 * rep.sram_idle_ratio()
        );
    }
    println!("\nWord 8 sits near the area minimum while leaving >50% of the port idle —");
    println!("the slack TPU-v3 spends on a second systolic array (paper Sec. VII-A).");
}
