//! Quickstart: lower one convolution to GEMM four different ways and verify
//! they all agree with direct convolution — then time the same layer on the
//! simulated TPU and GPU.
//!
//! Run with: `cargo run --release --example quickstart`

use implicit_conv::prelude::*;
use implicit_conv::tensor::conv_ref::{direct_conv, filter_dims, ifmap_dims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 5 running example: 8 channels, 5x5 input, 3x3 filter.
    let shape = ConvShape::square(1, 8, 5, 4, 3, 1, 0)?;
    println!("Layer: {shape}");
    println!(
        "Lowered matrix: {} x {} ({}x data duplication if materialized)",
        shape.lowered_rows(),
        shape.lowered_cols(),
        shape.duplication_factor()
    );

    let x = Tensor::<f32>::random(ifmap_dims(&shape), Layout::Nhwc, 1);
    let f = Tensor::<f32>::random(filter_dims(&shape), Layout::Nchw, 2);
    let golden = direct_conv(&shape, &x, &f);

    // Four lowering algorithms, one answer.
    let algorithms = [
        ConvAlgorithm::ExplicitIm2col(ColumnOrder::ChannelLast),
        ConvAlgorithm::ExplicitIm2col(ColumnOrder::ChannelFirst),
        ConvAlgorithm::ImplicitChannelLast,
        ConvAlgorithm::ImplicitChannelFirst { group_size: 3 },
    ];
    for algo in algorithms {
        let y = run_conv(algo, &shape, &x, &f);
        let diff = golden.max_abs_diff(&y);
        println!("  {algo:<40} max |Δ| vs direct conv = {diff:.2e}");
        assert!(diff < 1e-4);
    }

    // The same algorithm on a cycle-stepped 8x8 systolic array (the paper's
    // TPU dataflow at PE granularity).
    let array = ArrayConfig { rows: 8, cols: 8 };
    let xi = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 3);
    let fi = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 4);
    let golden_i = direct_conv(&shape, &xi, &fi);
    let on_array = implicit_conv::systolic::conv::conv_on_array(array, &shape, &xi, &fi);
    assert!(golden_i.approx_eq(&on_array, 0.0));
    println!("  systolic-array dataflow (8x8 grid)       bit-exact ✓");

    // Now a real layer on the simulated accelerators.
    let layer = ConvShape::square(8, 64, 56, 64, 3, 1, 1)?;
    let tpu = Simulator::new(TpuConfig::tpu_v2());
    let rep = tpu.simulate_conv("res2a_3x3", &layer, SimMode::ChannelFirst);
    println!(
        "\nTPU-v2 (simulated): {layer}\n  {} cycles = {:.1} us, {:.1} TFLOPS ({:.0}% of peak)",
        rep.cycles,
        rep.seconds(tpu.config()) * 1e6,
        rep.tflops(tpu.config()),
        100.0 * rep.utilization(tpu.config())
    );

    let gpu = GpuSim::new(GpuConfig::v100());
    let g = gpu.simulate_conv("res2a_3x3", &layer, GpuAlgo::ChannelFirst { reuse: true });
    println!(
        "V100 (simulated):  {} blocks, {:.1} us, {:.1} TFLOPS",
        g.timing.blocks,
        g.seconds(gpu.config()) * 1e6,
        g.tflops(gpu.config())
    );
    Ok(())
}
