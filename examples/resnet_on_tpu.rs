//! Simulate ResNet-50 inference on the TPU-v2 simulator, layer by layer,
//! comparing the implicit channel-first algorithm against the explicit
//! im2col baseline and against the "measured" hardware proxy.
//!
//! Run with: `cargo run --release --example resnet_on_tpu`

use implicit_conv::prelude::*;

fn main() {
    let batch = 8;
    let model = resnet50(batch);
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let proxy = TpuMeasuredProxy::tpu_v2();

    println!("ResNet-50 on simulated TPU-v2, batch {batch}\n");
    println!(
        "{:<16} {:>12} {:>9} {:>8} {:>9} {:>8}",
        "layer", "cycles", "TFLOPS", "util%", "DRAM MB", "err%"
    );

    let mut implicit_total = 0u64;
    let mut explicit_total = 0u64;
    let mut err_acc = 0.0;
    for l in &model.layers {
        let rep = sim.simulate_conv(&l.name, &l.shape, SimMode::ChannelFirst);
        let exp = sim.simulate_conv(&l.name, &l.shape, SimMode::Explicit);
        let measured = proxy.conv_cycles(&l.shape);
        let err = 100.0 * (rep.cycles as f64 - measured).abs() / measured;
        err_acc += err * l.count as f64;
        implicit_total += rep.cycles * l.count as u64;
        explicit_total += exp.cycles * l.count as u64;
        // Print a representative subset to keep output readable.
        if l.name.ends_with("3x3") && l.name.contains("_1_") || l.name == "conv1" {
            println!(
                "{:<16} {:>12} {:>9.1} {:>8.1} {:>9.1} {:>8.1}",
                l.name,
                rep.cycles,
                rep.tflops(sim.config()),
                100.0 * rep.utilization(sim.config()),
                rep.dram_bytes as f64 / 1e6,
                err
            );
        }
    }
    let instances: usize = model.layers.iter().map(|l| l.count).sum();
    println!("\nAll {} conv layer instances:", instances);
    println!(
        "  implicit channel-first: {:>12} cycles = {:.2} ms",
        implicit_total,
        sim.config().cycles_to_seconds(implicit_total) * 1e3
    );
    println!(
        "  explicit im2col:        {:>12} cycles = {:.2} ms ({:+.0}% overhead)",
        explicit_total,
        sim.config().cycles_to_seconds(explicit_total) * 1e3,
        100.0 * (explicit_total as f64 / implicit_total as f64 - 1.0)
    );
    println!(
        "  mean |error| vs measured-proxy: {:.1}%",
        err_acc / instances as f64
    );
}
