//! Trace a small simulated workload and print the Chrome-trace JSON to
//! stdout — pipe it into a file and open it in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Run with: `cargo run --release --example tracecat > trace.json`
//!
//! The spans on each layer track are a conserved partition of that layer's
//! `cycles` (dispatch + ifmap-fill + steady), so the viewer's timeline adds
//! up exactly to what the report claims — the invariant
//! `LayerReport::assert_conserved` enforces in tests.

use implicit_conv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rec = Recorder::new();
    let tpu = Simulator::new(TpuConfig::tpu_v2());

    // A few ResNet-50 layers, channel-first, with full phase breakdowns.
    let shapes = [
        ("res2a", ConvShape::square(8, 64, 56, 64, 3, 1, 1)?),
        ("res3a", ConvShape::square(8, 128, 28, 128, 3, 1, 1)?),
        ("res4a-s2", ConvShape::square(8, 256, 14, 256, 3, 2, 1)?),
    ];
    for (name, shape) in &shapes {
        let rep = tpu.simulate_conv_traced(name, shape, SimMode::ChannelFirst, &mut rec);
        assert!(rep.assert_conserved());
    }

    // The same strided layer on the V100 model, both algorithms.
    let gpu = GpuSim::new(GpuConfig::v100());
    let (name, shape) = &shapes[2];
    gpu.simulate_conv_traced(name, shape, GpuAlgo::CudnnImplicit, &mut rec);
    gpu.simulate_conv_traced(name, shape, GpuAlgo::ChannelFirst { reuse: true }, &mut rec);

    print!("{}", rec.to_chrome_json());
    eprintln!(
        "[{} spans on {} tracks, {} counters]",
        rec.spans().len(),
        rec.tracks().len(),
        rec.counters().len()
    );
    Ok(())
}
