//! Training with channel-first im2col: compute a real gradient step
//! functionally (forward, weight gradient, input gradient — all through the
//! per-tap decomposition), verify the adjoint identity, then time the same
//! step on simulated TPU-v2 and TPU-v3 cores.
//!
//! Run with: `cargo run --release --example training_step`

use implicit_conv::core::backward::{dgrad, inner, wgrad};
use implicit_conv::prelude::*;
use implicit_conv::tensor::conv_ref::{direct_conv, filter_dims, ifmap_dims, ofmap_dims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small layer, functionally.
    let shape = ConvShape::square(2, 8, 14, 16, 3, 1, 1)?;
    let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 1);
    let w = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 2);
    let dy = Tensor::<i64>::random(ofmap_dims(&shape), Layout::Nchw, 3);

    let y = direct_conv(&shape, &x, &w);
    let dw = wgrad(&shape, &x, &dy);
    let dx = dgrad(&shape, &w, &dy);

    // The adjoint identity <dY, conv(X)> = <dW, W> = <dX, X> holds exactly
    // on integers — the algebraic proof that the per-tap gradient lowering
    // is the true transpose of the per-tap forward lowering.
    let lhs = inner(&dy, &y);
    assert_eq!(lhs, inner(&dw, &w));
    assert_eq!(lhs, inner(&dx, &x));
    println!("Layer {shape}");
    println!("adjoint identity:  <dY, Y> = <dW, W> = <dX, X> = {lhs}  ✓ (bit-exact)");

    // Now time one ResNet-50 training step on each TPU generation.
    let model = resnet50(8);
    println!("\nResNet-50 training step (batch 8):");
    for (name, cfg) in [
        ("TPU-v2", TpuConfig::tpu_v2()),
        ("TPU-v3", TpuConfig::tpu_v3()),
    ] {
        let sim = Simulator::new(cfg);
        let reports = sim.simulate_model_training(&model);
        let mut fwd = 0u64;
        let mut wg = 0u64;
        let mut dg = 0u64;
        for (r, k) in &reports {
            fwd += r.forward.cycles * *k as u64;
            wg += r.wgrad.cycles * *k as u64;
            dg += r.dgrad.as_ref().map_or(0, |d| d.cycles) * *k as u64;
        }
        let ms = |c: u64| cfg.cycles_to_seconds(c) * 1e3;
        println!(
            "  {name}: fwd {:.2} ms + wgrad {:.2} ms + dgrad {:.2} ms = {:.2} ms \
             ({:.1} TFLOPS sustained)",
            ms(fwd),
            ms(wg),
            ms(dg),
            ms(fwd + wg + dg),
            implicit_conv::tpusim::training::training_tflops(&cfg, &reports),
        );
    }
    println!("\nBoth gradients run the same per-tap 1x1 schedules as the forward pass —");
    println!("no extra im2col machinery is needed for training.");
    Ok(())
}
