//! Sweep stride 1/2/4 over representative ResNet layers on the simulated
//! V100: the cuDNN-proxy (channel-last) degrades with stride while our
//! channel-first schedule holds — the paper's Fig. 4a / Fig. 18a story.
//!
//! Run with: `cargo run --release --example strided_conv_gpu`

use implicit_conv::prelude::*;
use implicit_conv::workloads::resnet_representative_layers;

fn main() {
    let gpu = GpuSim::new(GpuConfig::v100());
    println!("Representative ResNet layers on simulated V100 (FP16, batch 8)\n");
    println!(
        "{:<20} {:>7} {:>12} {:>12} {:>12} {:>9}",
        "layer (Wi-Ci-Co-Wf)", "stride", "cuDNN TF/s", "ours TF/s", "GEMM TF/s", "speedup"
    );
    for stride in [1usize, 2, 4] {
        for layer in resnet_representative_layers(8, stride) {
            let cudnn = gpu.simulate_conv(&layer.name, &layer.shape, GpuAlgo::CudnnImplicit);
            let ours = gpu.simulate_conv(
                &layer.name,
                &layer.shape,
                GpuAlgo::ChannelFirst { reuse: true },
            );
            let gemm = gpu.simulate_conv(&layer.name, &layer.shape, GpuAlgo::GemmEquivalent);
            println!(
                "{:<20} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x",
                layer.name,
                stride,
                cudnn.tflops(gpu.config()),
                ours.tflops(gpu.config()),
                gemm.tflops(gpu.config()),
                cudnn.timing.cycles / ours.timing.cycles
            );
        }
        println!();
    }
    println!("cuDNN-proxy = implicit channel-last; ours = implicit channel-first + reuse;");
    println!("GEMM = a plain GEMM of the lowered dimensions (upper reference).");
}
