//! Cross-crate integration: every lowering algorithm, on every substrate,
//! produces the reference convolution — the repository's master correctness
//! property.

use implicit_conv::core::algo::{run, ConvAlgorithm};
use implicit_conv::core::{BlockConfig, FetchOrder, TileSchedule};
use implicit_conv::prelude::*;
use implicit_conv::systolic::conv::run_conv_channel_first;
use implicit_conv::tensor::conv_ref::{direct_conv, filter_dims, ifmap_dims};

fn cases() -> Vec<ConvShape> {
    vec![
        // The paper's running example (Fig. 5).
        ConvShape::square(1, 8, 5, 4, 3, 1, 0).unwrap(),
        // The Fig. 10 systolic example.
        ConvShape::square(2, 4, 5, 4, 3, 1, 0).unwrap(),
        // Strided + padded (Fig. 8).
        ConvShape::square(2, 3, 9, 5, 3, 2, 1).unwrap(),
        // Pointwise.
        ConvShape::square(2, 6, 7, 3, 1, 1, 0).unwrap(),
        // Dilated (Sec. II: deformable/dilated motivate implicit im2col).
        ConvShape::new(1, 2, 11, 11, 3, 3, 3)
            .dilation(2)
            .pad(2)
            .build()
            .unwrap(),
        // Fully asymmetric.
        ConvShape::new(2, 5, 8, 12, 7, 3, 2)
            .stride_hw(2, 1)
            .pad_hw(0, 1)
            .build()
            .unwrap(),
    ]
}

#[test]
fn every_algorithm_matches_direct_convolution() {
    for (i, shape) in cases().into_iter().enumerate() {
        let seed = 100 + i as u64;
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, seed);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, seed + 50);
        let want = direct_conv(&shape, &x, &f);
        let algos = [
            ConvAlgorithm::ExplicitIm2col(ColumnOrder::ChannelLast),
            ConvAlgorithm::ExplicitIm2col(ColumnOrder::ChannelFirst),
            ConvAlgorithm::ImplicitChannelLast,
            ConvAlgorithm::ImplicitChannelFirst { group_size: 1 },
            ConvAlgorithm::ImplicitChannelFirst { group_size: 4 },
            ConvAlgorithm::ImplicitChannelFirstBlocked(
                BlockConfig {
                    bm: 32,
                    bn: 8,
                    bk: 4,
                },
                FetchOrder::Naive,
            ),
            ConvAlgorithm::ImplicitChannelFirstBlocked(
                BlockConfig {
                    bm: 32,
                    bn: 8,
                    bk: 4,
                },
                FetchOrder::Reordered,
            ),
        ];
        for algo in algos {
            let got = run(algo, &shape, &x, &f);
            assert!(want.approx_eq(&got, 0.0), "case {i} ({shape}): {algo}");
        }
    }
}

#[test]
fn systolic_array_executes_all_cases_bit_exactly() {
    for (i, shape) in cases().into_iter().enumerate() {
        let seed = 300 + i as u64;
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, seed);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, seed + 50);
        let want = direct_conv(&shape, &x, &f);
        // Array just big enough for the TPU schedule of this shape.
        let sched = TileSchedule::tpu(&shape, 64);
        let rows = sched.max_occupied_rows(&shape).max(1);
        let cfg = ArrayConfig {
            rows,
            cols: shape.co.min(8),
        };
        let run = run_conv_channel_first(cfg, &shape, &x, &f, &sched);
        assert!(want.approx_eq(&run.ofmap, 0.0), "case {i} ({shape})");
        assert_eq!(
            run.cycles, run.predicted_cycles,
            "case {i}: timing model drift"
        );
    }
}

#[test]
fn input_layout_never_changes_results() {
    let shape = ConvShape::square(2, 4, 6, 3, 3, 1, 1).unwrap();
    let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 7);
    let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 8);
    let want = direct_conv(&shape, &x, &f);
    for layout in Layout::ALL {
        let got = run(
            ConvAlgorithm::ImplicitChannelFirst { group_size: 3 },
            &shape,
            &x.relayout(layout),
            &f,
        );
        assert!(want.approx_eq(&got, 0.0), "layout {layout}");
    }
}
