//! Integration: the paper's validation thresholds hold for the shipped
//! simulators — these are the claims EXPERIMENTS.md records, pinned as
//! tests so regressions in any component model surface immediately.

use implicit_conv::models::{mean_abs_pct_error, Roofline, TpuMeasuredProxy};
use implicit_conv::prelude::*;
use implicit_conv::tpusim::LayerReport;
use implicit_conv::workloads;

fn tpu() -> Simulator {
    Simulator::new(TpuConfig::tpu_v2())
}

#[test]
fn fig13a_gemm_validation_error_under_7_percent() {
    let sim = tpu();
    let proxy = TpuMeasuredProxy::tpu_v2();
    let mut pairs = Vec::new();
    for m in [256usize, 1024, 4096, 8192] {
        for n in [256usize, 1024, 8192] {
            for k in [256usize, 1024, 8192] {
                pairs.push((
                    sim.simulate_gemm("g", m, n, k).cycles as f64,
                    proxy.gemm_cycles(m, n, k),
                ));
            }
        }
    }
    let err = mean_abs_pct_error(&pairs);
    assert!(
        err < 0.07,
        "GEMM validation error {:.2}% (paper 4.42%)",
        100.0 * err
    );
}

#[test]
fn fig15_layerwise_mae_under_8_percent() {
    let sim = tpu();
    let proxy = TpuMeasuredProxy::tpu_v2();
    let mut pairs = Vec::new();
    for model in workloads::all_models(8) {
        for l in &model.layers {
            let s = sim.simulate_conv(&l.name, &l.shape, SimMode::ChannelFirst);
            pairs.push((s.cycles as f64, proxy.conv_cycles(&l.shape)));
        }
    }
    let err = mean_abs_pct_error(&pairs);
    assert!(
        err < 0.08,
        "layer-wise MAE {:.2}% (paper 5.8%)",
        100.0 * err
    );
}

#[test]
fn no_simulated_layer_beats_the_roofline() {
    let sim = tpu();
    let roofline = Roofline::tpu_v2();
    for model in workloads::all_models(8) {
        for l in &model.layers {
            let rep: LayerReport = sim.simulate_conv(&l.name, &l.shape, SimMode::ChannelFirst);
            let min = roofline.min_cycles(l.shape.macs(), rep.dram_bytes);
            assert!(
                rep.cycles as f64 >= min * 0.999,
                "{}/{} reports {} cycles below the roofline {min:.0}",
                model.name,
                l.name,
                rep.cycles
            );
        }
    }
}

#[test]
fn fig16a_utilization_drops_as_array_grows() {
    let model = workloads::vgg16(8);
    let mut prev = f64::INFINITY;
    for size in [64usize, 128, 256, 512] {
        let cfg = TpuConfig::tpu_v2().with_array_size(size);
        let sim = Simulator::new(cfg);
        let rep = sim.simulate_model(&model, SimMode::ChannelFirst);
        let util = rep.tflops(&cfg) / cfg.peak_tflops();
        assert!(
            util < prev,
            "utilization must fall with array size ({size})"
        );
        prev = util;
    }
}

#[test]
fn fig16b_idle_ratio_grows_with_word_size() {
    let model = workloads::vgg16(8);
    let mut prev = -1.0;
    for elems in [1usize, 2, 8, 32] {
        let sim = Simulator::new(TpuConfig::tpu_v2().with_word_elems(elems));
        let idle = sim
            .simulate_model(&model, SimMode::ChannelFirst)
            .sram_idle_ratio();
        assert!(idle > prev, "idle ratio must grow with word size ({elems})");
        prev = idle;
    }
    assert!(prev > 0.5, "word-32 idle ratio should exceed 50%");
}

#[test]
fn fig17_gpu_parity_within_5_percent() {
    let gpu = GpuSim::new(GpuConfig::v100());
    let mut acc = 0.0;
    let models = workloads::all_models(8);
    for m in &models {
        let cudnn = gpu.model_seconds(m, GpuAlgo::CudnnImplicit);
        let ours = gpu.model_seconds(m, GpuAlgo::ChannelFirst { reuse: true });
        acc += ours / cudnn;
    }
    let avg = acc / models.len() as f64;
    assert!((0.95..1.05).contains(&avg), "fig17 average ratio {avg:.3}");
}

#[test]
fn fig18a_strided_speedup_positive_on_average() {
    let gpu = GpuSim::new(GpuConfig::v100());
    let mut speedups = Vec::new();
    for m in workloads::all_models(8) {
        for l in m.strided_layers() {
            if l.shape.ci < 16 {
                continue;
            }
            let cudnn = gpu.simulate_conv(&l.name, &l.shape, GpuAlgo::CudnnImplicit);
            let ours = gpu.simulate_conv(&l.name, &l.shape, GpuAlgo::ChannelFirst { reuse: true });
            speedups.push(cudnn.timing.cycles / ours.timing.cycles);
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    assert!(avg > 1.08, "average strided speedup {avg:.2} (paper ~1.20)");
    assert!(max > 1.3, "max strided speedup {max:.2} (paper ~1.40)");
}

#[test]
fn fig04b_tpu_is_stride_insensitive_where_gpu_is_not() {
    let sim = tpu();
    let gpu = GpuSim::new(GpuConfig::v100());
    let mut tpu_drops = Vec::new();
    let mut gpu_drops = Vec::new();
    for i in 0..4 {
        let l1 = &workloads::resnet_representative_layers(64, 1)[i];
        let l2 = &workloads::resnet_representative_layers(64, 2)[i];
        let t1 = sim
            .simulate_conv("a", &l1.shape, SimMode::ChannelFirst)
            .tflops(sim.config());
        let t2 = sim
            .simulate_conv("b", &l2.shape, SimMode::ChannelFirst)
            .tflops(sim.config());
        tpu_drops.push(1.0 - t2 / t1);
        let g1 = gpu
            .simulate_conv("a", &l1.shape, GpuAlgo::CudnnImplicit)
            .tflops(gpu.config());
        let g2 = gpu
            .simulate_conv("b", &l2.shape, GpuAlgo::CudnnImplicit)
            .tflops(gpu.config());
        gpu_drops.push(1.0 - g2 / g1);
    }
    let tpu_avg = tpu_drops.iter().sum::<f64>() / 4.0;
    let gpu_avg = gpu_drops.iter().sum::<f64>() / 4.0;
    assert!(
        tpu_avg < 0.1,
        "TPU stride-2 drop {tpu_avg:.2} should be small"
    );
    assert!(
        gpu_avg > 0.2,
        "GPU stride-2 drop {gpu_avg:.2} should be large"
    );
    assert!(
        gpu_avg > 3.0 * tpu_avg,
        "GPU must degrade far more than TPU"
    );
}
