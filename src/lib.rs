//! # implicit-conv
//!
//! A from-scratch Rust reproduction of *"Characterizing and Demystifying the
//! Implicit Convolution Algorithm on Commercial Matrix-Multiplication
//! Accelerators"* (IISWC 2021): the **channel-first implicit im2col**
//! algorithm, a cycle-level **TPU-v2 simulator** (TPUSim), a **V100
//! Tensor-Core timing model**, and every substrate they need — built with
//! no external simulator or GPU dependency.
//!
//! This crate is a facade: it re-exports the workspace members so examples
//! and downstream users need a single dependency. See the individual crates
//! for the full APIs:
//!
//! * [`tensor`] (`iconv-tensor`) — shapes, layouts, tensors, reference
//!   conv/GEMM, explicit im2col;
//! * [`core`] (`iconv-core`) — the paper's algorithm: lowered-matrix
//!   algebra, filter decomposition, multi-tile schedules, address
//!   generation, the blocked GPU variant;
//! * [`systolic`] (`iconv-systolic`) — a cycle-stepped weight-stationary
//!   PE grid with validated closed-form timing;
//! * [`dram`] / [`sram`] — off-chip and on-chip memory models;
//! * [`tpusim`] (`iconv-tpusim`) — TPUSim;
//! * [`gpusim`] (`iconv-gpusim`) — the V100 model;
//! * [`workloads`] (`iconv-workloads`) — the seven CNN layer tables;
//! * [`models`] (`iconv-models`) — the hardware proxies and error metrics;
//! * [`trace`] (`iconv-trace`) — span/counter recording behind the
//!   simulators' `*_traced` entry points, with Chrome-trace export;
//! * [`api`] (`iconv-api`) — the shared request vocabulary: [`api::Work`],
//!   hardware override specs, canonical cache keys, compact sweep specs,
//!   and the paper workload table as `Work` lists;
//! * [`serve`] (`iconv-serve`) — a cached, concurrent TCP estimate service
//!   over the simulators (`served` / `loadgen` binaries, newline-delimited
//!   JSON protocol, content-addressed LRU cache, batched sweep execution).
//!
//! ## Quickstart
//!
//! ```
//! use implicit_conv::prelude::*;
//!
//! # fn main() -> Result<(), implicit_conv::tensor::ShapeError> {
//! // One ResNet-50 block convolution at batch 8.
//! let shape = ConvShape::square(8, 64, 56, 64, 3, 1, 1)?;
//!
//! // Simulate it on a TPU-v2 core with channel-first implicit im2col.
//! let tpu = Simulator::new(TpuConfig::tpu_v2());
//! let report = tpu.simulate_conv("res2a", &shape, SimMode::ChannelFirst);
//! assert!(report.tflops(tpu.config()) > 1.0);
//! # Ok(()) }
//! ```

pub use iconv_api as api;
pub use iconv_core as core;
pub use iconv_dram as dram;
pub use iconv_faults as faults;
pub use iconv_gpusim as gpusim;
pub use iconv_models as models;
pub use iconv_serve as serve;
pub use iconv_sram as sram;
pub use iconv_systolic as systolic;
pub use iconv_tensor as tensor;
pub use iconv_tpusim as tpusim;
pub use iconv_trace as trace;
pub use iconv_workloads as workloads;

/// The most common imports, for examples and quick scripts.
pub mod prelude {
    pub use iconv_api::{SweepSpec, SweepTarget, TpuHwSpec, Work};
    pub use iconv_core::algo::{run as run_conv, ConvAlgorithm};
    pub use iconv_core::{
        AddrGen, BlockConfig, BlockDecomposition, FetchOrder, FilterTile, LoweredView,
        TileSchedule, VectorMemSpec,
    };
    pub use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
    pub use iconv_models::TpuMeasuredProxy;
    pub use iconv_systolic::ArrayConfig;
    pub use iconv_tensor::{
        conv_ref, im2col, ColumnOrder, ConvShape, Coord, Dims, Layout, Matrix, Tensor,
    };
    pub use iconv_tpusim::{SimMode, Simulator, TpuConfig};
    pub use iconv_trace::{NullSink, Recorder, TraceSink};
    pub use iconv_workloads::{all_models, resnet50, vgg16};
}
