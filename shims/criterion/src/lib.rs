//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of criterion's API the workspace benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock harness.
//!
//! Each benchmark is warmed up, then timed in batches until the
//! measurement budget ([`Criterion::measurement_time`]) elapses; the
//! reported figure is mean
//! nanoseconds per iteration over the measured batches. Results print as
//! aligned human-readable lines and, additionally, as machine-readable
//! `BENCHJSON {...}` lines that tooling (`scripts`, `BENCH_baseline.json`
//! refreshes) can grep out of the run output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timing result of one benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark id (`group/param` or bare function name).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iters: u64,
    /// Optional elements-per-iteration for throughput reporting.
    pub elements: Option<u64>,
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: Vec<Sample>,
    /// Warm-up time before measurement starts.
    warm_up: Duration,
    /// Measurement time budget per benchmark.
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            samples: Vec::new(),
            warm_up: Duration::from_millis(30),
            measure: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Configure the per-benchmark measurement budget (criterion-compatible).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Configure the warm-up time (criterion-compatible).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Ignored; retained for API compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Run a standalone benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let sample = run_one(id.to_string(), None, self.warm_up, self.measure, |b| f(b));
        report(&sample);
        self.samples.push(sample);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// All samples measured so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Print a closing summary. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        eprintln!(
            "[criterion-shim] {} benchmarks measured",
            self.samples.len()
        );
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Ignored; retained for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored; retained for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measure = d;
        self
    }

    /// Benchmark `f` with `input`, labeled by `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        let sample = run_one(
            full,
            self.throughput,
            self.parent.warm_up,
            self.parent.measure,
            |b| f(b, input),
        );
        report(&sample);
        self.parent.samples.push(sample);
        self
    }

    /// Benchmark a closure without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample = run_one(
            full,
            self.throughput,
            self.parent.warm_up,
            self.parent.measure,
            |b| f(b),
        );
        report(&sample);
        self.parent.samples.push(sample);
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param` style id.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

/// Units for group throughput reporting.
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measure `f`, storing mean ns/iter.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, tracking the rate to
        // pick a batch size that keeps clock overhead negligible.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Aim for batches of ~1ms, at least 1 iteration.
        let batch = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_iters += batch;
        }
        let ns = measure_start.elapsed().as_nanos() as f64 / total_iters.max(1) as f64;
        self.result = Some((ns, total_iters));
    }

    /// criterion's `iter_batched` collapsed to the same measurement loop.
    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        self.iter(|| f(setup()));
    }
}

/// Batch sizing hint; ignored by the shim.
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

fn run_one(
    id: String,
    elements: Option<u64>,
    warm_up: Duration,
    measure: Duration,
    mut f: impl FnMut(&mut Bencher),
) -> Sample {
    let mut b = Bencher {
        warm_up,
        measure,
        result: None,
    };
    f(&mut b);
    let (ns_per_iter, iters) = b.result.unwrap_or((f64::NAN, 0));
    Sample {
        id,
        ns_per_iter,
        iters,
        elements,
    }
}

fn report(s: &Sample) {
    let throughput = s
        .elements
        .map(|e| format!("  ({:.1} Melem/s)", e as f64 / s.ns_per_iter * 1e3))
        .unwrap_or_default();
    println!("{:<44} {:>14.1} ns/iter{throughput}", s.id, s.ns_per_iter);
    println!(
        "BENCHJSON {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
        s.id, s.ns_per_iter, s.iters
    );
}

/// Bundle benchmark functions into a runner callable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` executes bench binaries with `--test`;
            // there is nothing to test in a timing harness, so exit cleanly.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.samples().len(), 1);
        let s = &c.samples()[0];
        assert!(s.iters > 0);
        assert!(s.ns_per_iter.is_finite() && s.ns_per_iter >= 0.0);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("inner", 42), &3usize, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        assert_eq!(c.samples()[0].id, "grp/inner/42");
        assert_eq!(c.samples()[0].elements, Some(10));
    }
}
