//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the small slice of proptest's API the workspace
//! actually uses: the [`proptest!`] macro, range/tuple/`select` strategies,
//! `prop_map` / `prop_filter_map` combinators, `prop_assert!` family, and a
//! deterministic [`test_runner::TestRunner`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in the
//!   panic message (via the assertion text) but is not minimized.
//! * **Fully deterministic.** Every runner starts from a fixed seed, so a
//!   failure reproduces on every run and `*.proptest-regressions` files are
//!   ignored.

pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A generator of random values of type `Value`.
    ///
    /// Unlike real proptest there is no intermediate value tree: strategies
    /// generate values directly from the runner's RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Compatibility with `Strategy::new_tree`: returns a leaf "tree"
        /// holding one generated value.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<LeafTree<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(LeafTree {
                value: self.generate(runner),
            })
        }

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Map generated values through `f`, retrying (up to an internal
        /// limit) whenever `f` returns `None`. `whence` labels the filter in
        /// the panic message if the limit is exhausted.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Keep only values for which `f` returns `true`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Minimal stand-in for proptest's `ValueTree`: a leaf with no shrinking.
    pub trait ValueTree {
        /// The value type.
        type Value;
        /// The current (and only) value.
        fn current(&self) -> Self::Value;
    }

    /// The concrete tree produced by [`Strategy::new_tree`].
    #[derive(Debug, Clone)]
    pub struct LeafTree<T> {
        pub(crate) value: T,
    }

    impl<T: Clone> ValueTree for LeafTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(runner)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map '{}' rejected 10000 consecutive cases",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(runner);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive cases",
                self.whence
            );
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Integers samplable from a `u64` draw; implemented for the integer
    /// types the workspace generates.
    pub trait SampleInt: Copy + PartialOrd {
        fn to_u64(self) -> u64;
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleInt for $t {
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn from_u64(v: u64) -> Self {
                    v as $t
                }
            }
        )*};
    }
    impl_sample_int!(usize, u64, u32, u16, u8, i64, i32);

    impl<T: SampleInt> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
            assert!(lo < hi, "empty range strategy");
            T::from_u64(lo + runner.next_u64() % (hi - lo))
        }
    }

    impl<T: SampleInt> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
            assert!(lo <= hi, "empty range strategy");
            let span = hi - lo + 1;
            T::from_u64(
                lo + if span == 0 {
                    runner.next_u64()
                } else {
                    runner.next_u64() % span
                },
            )
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, runner: &mut TestRunner) -> f64 {
            self.start + runner.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Uniformly select one element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            self.options[(runner.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    /// proptest names this `ProptestConfig` in its prelude.
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic RNG driving all strategies (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// A runner with a fixed seed: every run of the suite sees the same
        /// case sequence.
        pub fn deterministic() -> Self {
            Self {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Next value in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::deterministic()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::sample;
    }
}

/// Run each contained test function over many random strategy draws.
///
/// Supports the same surface syntax as proptest's macro for the cases used in
/// this workspace: an optional `#![proptest_config(...)]` header and test
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::deterministic();
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{Strategy, ValueTree};
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRunner::deterministic();
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut r);
            assert!((3..10).contains(&v));
            let w = (5u64..=5).generate(&mut r);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let strat = (1usize..100, 0u64..1000);
        let a: Vec<_> = {
            let mut r = TestRunner::deterministic();
            (0..32).map(|_| strat.generate(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = TestRunner::deterministic();
            (0..32).map(|_| strat.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn filter_map_retries() {
        let mut r = TestRunner::deterministic();
        let evens = (0usize..1000).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn select_draws_all_options() {
        let mut r = TestRunner::deterministic();
        let s = prop::sample::select(vec![1, 2, 3]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut r) - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn new_tree_yields_current() {
        let mut r = TestRunner::deterministic();
        let t = (7usize..8).new_tree(&mut r).unwrap();
        assert_eq!(t.current(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: multiple args, tuple strategies, prop_asserts.
        #[test]
        fn macro_roundtrip(a in 1usize..=4, (b, c) in (0u64..10, 2i64..5)) {
            prop_assert!((1..=4).contains(&a));
            prop_assert!(b < 10);
            prop_assert_eq!(c.signum(), 1);
            prop_assert_ne!(c, 0);
        }
    }
}
